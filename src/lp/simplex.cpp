#include "ocd/lp/simplex.hpp"

#include <algorithm>
#include <cmath>

namespace ocd::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

/// Dense bounded-variable simplex working state.  Columns are
/// [structural | slack | artificial]; the tableau holds B⁻¹A maintained
/// by explicit pivots, with the active objective carried as an extra row
/// (reduced costs) that the pivots keep up to date.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const std::vector<double>& lower,
          const std::vector<double>& upper, const SimplexOptions& options)
      : options_(options) {
    const auto n_struct = static_cast<std::size_t>(lp.num_variables());
    const auto m = static_cast<std::size_t>(lp.num_constraints());
    num_struct_ = n_struct;
    rows_ = m;

    lower_ = lower;
    upper_ = upper;
    cost_.assign(n_struct, 0.0);
    for (std::size_t j = 0; j < n_struct; ++j)
      cost_[j] = lp.variable(static_cast<std::int32_t>(j)).objective;

    // Slack columns: one per row; bounds encode the relation.
    slack_begin_ = n_struct;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = lp.constraint(static_cast<std::int32_t>(i));
      switch (row.relation) {
        case Relation::kLessEqual:
          lower_.push_back(0.0);
          upper_.push_back(kInfinity);
          break;
        case Relation::kGreaterEqual:
          lower_.push_back(-kInfinity);
          upper_.push_back(0.0);
          break;
        case Relation::kEqual:
          lower_.push_back(0.0);
          upper_.push_back(0.0);
          break;
      }
      cost_.push_back(0.0);
    }
    total_cols_ = n_struct + m;  // artificials appended on demand

    // Dense constraint matrix rows (structural + slack identity).
    matrix_.assign(m, std::vector<double>(total_cols_, 0.0));
    rhs_.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = lp.constraint(static_cast<std::int32_t>(i));
      for (const Term& t : row.terms)
        matrix_[i][static_cast<std::size_t>(t.var)] = t.coeff;
      matrix_[i][slack_begin_ + i] = 1.0;
      rhs_[i] = row.rhs;
    }

    // Start structural and slack variables at a finite bound.
    value_.assign(total_cols_, 0.0);
    for (std::size_t j = 0; j < total_cols_; ++j)
      value_[j] = std::isfinite(lower_[j]) ? lower_[j]
                  : std::isfinite(upper_[j]) ? upper_[j]
                                             : 0.0;

    // Choose the initial basis: slack if its implied value is within its
    // bounds, otherwise an artificial column.
    basis_.assign(m, -1);
    in_basis_.assign(total_cols_, false);
    std::vector<std::pair<std::size_t, double>> artificial_rows;
    for (std::size_t i = 0; i < m; ++i) {
      double residual = rhs_[i];
      for (std::size_t j = 0; j < total_cols_; ++j) {
        if (j == slack_begin_ + i) continue;
        if (matrix_[i][j] != 0.0) residual -= matrix_[i][j] * value_[j];
      }
      const std::size_t slack = slack_begin_ + i;
      if (residual >= lower_[slack] - options_.eps &&
          residual <= upper_[slack] + options_.eps) {
        basis_[i] = static_cast<std::int64_t>(slack);
        in_basis_[slack] = true;
        value_[slack] = residual;
      } else {
        // Clamp slack to its nearest bound; the artificial absorbs the
        // remaining violation.
        value_[slack] = residual < lower_[slack] ? lower_[slack]
                                                 : upper_[slack];
        artificial_rows.emplace_back(i, residual - value_[slack]);
      }
    }

    artificial_begin_ = total_cols_;
    for (const auto& [row, violation] : artificial_rows) {
      // Scale the row so the artificial enters with coefficient +1 and a
      // nonnegative value (row scaling by ±1 is harmless).
      const double sigma = violation >= 0.0 ? 1.0 : -1.0;
      if (sigma < 0.0) {
        for (auto& entry : matrix_[row]) entry = -entry;
        rhs_[row] = -rhs_[row];
      }
      for (std::size_t i = 0; i < m; ++i)
        matrix_[i].push_back(i == row ? 1.0 : 0.0);
      lower_.push_back(0.0);
      upper_.push_back(kInfinity);
      cost_.push_back(0.0);
      value_.push_back(std::abs(violation));
      in_basis_.push_back(true);
      basis_[row] = static_cast<std::int64_t>(total_cols_);
      ++total_cols_;
    }
    num_artificials_ = total_cols_ - artificial_begin_;
  }

  LpSolution solve() {
    LpSolution result;

    if (num_artificials_ > 0) {
      // Phase 1: minimize the sum of artificials.
      std::vector<double> phase1_cost(total_cols_, 0.0);
      for (std::size_t j = artificial_begin_; j < total_cols_; ++j)
        phase1_cost[j] = 1.0;
      const SolveStatus status = optimize(phase1_cost, result.iterations);
      if (status == SolveStatus::kIterationLimit) {
        result.status = status;
        return result;
      }
      double infeasibility = 0.0;
      for (std::size_t j = artificial_begin_; j < total_cols_; ++j)
        infeasibility += value_[j];
      if (infeasibility > 1e-7) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      // Pin artificials at zero for phase 2.
      for (std::size_t j = artificial_begin_; j < total_cols_; ++j) {
        lower_[j] = 0.0;
        upper_[j] = 0.0;
        value_[j] = 0.0;
      }
    }

    const SolveStatus status = optimize(cost_, result.iterations);
    result.status = status;
    if (status != SolveStatus::kOptimal) return result;

    result.values.assign(value_.begin(),
                         value_.begin() + static_cast<std::ptrdiff_t>(num_struct_));
    result.objective = 0.0;
    for (std::size_t j = 0; j < num_struct_; ++j)
      result.objective += cost_[j] * value_[j];
    return result;
  }

 private:
  /// Primal simplex loop minimizing `active_cost` from the current basis.
  SolveStatus optimize(const std::vector<double>& active_cost,
                       std::int64_t& iterations) {
    std::int64_t stall = 0;
    double last_objective = current_objective(active_cost);
    bool bland = false;

    // Reduced-cost row: d = c - c_B^T * tableau, recomputed from scratch
    // here and maintained by pivots afterwards.
    std::vector<double> reduced = compute_reduced_costs(active_cost);

    while (iterations < options_.max_iterations) {
      ++iterations;

      // Pricing: eligible nonbasic columns.
      std::size_t entering = total_cols_;
      int direction = 0;
      double best_score = options_.eps;
      for (std::size_t j = 0; j < total_cols_; ++j) {
        if (in_basis_[j]) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed
        const double d = reduced[j];
        const bool at_lower = value_[j] <= lower_[j] + options_.eps;
        const bool at_upper = value_[j] >= upper_[j] - options_.eps;
        int dir = 0;
        double score = 0.0;
        if (at_lower && d < -options_.eps) {
          dir = +1;
          score = -d;
        } else if (at_upper && d > options_.eps) {
          dir = -1;
          score = d;
        } else {
          continue;
        }
        if (bland) {
          entering = j;
          direction = dir;
          break;  // smallest index
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      if (entering == total_cols_) return SolveStatus::kOptimal;

      // Ratio test along the entering direction.
      const double sigma = static_cast<double>(direction);
      double limit = upper_[entering] - lower_[entering];  // bound flip
      std::size_t leaving_row = rows_;
      double leaving_target = 0.0;  // bound the leaving variable lands on
      for (std::size_t i = 0; i < rows_; ++i) {
        const double a = matrix_[i][entering];
        if (std::abs(a) <= options_.eps) continue;
        const auto b = static_cast<std::size_t>(basis_[i]);
        // Basic value changes at rate -sigma * a per unit of entering.
        const double rate = -sigma * a;
        double room;
        double target;
        if (rate < 0.0) {
          if (!std::isfinite(lower_[b])) continue;
          room = (value_[b] - lower_[b]) / -rate;
          target = lower_[b];
        } else {
          if (!std::isfinite(upper_[b])) continue;
          room = (upper_[b] - value_[b]) / rate;
          target = upper_[b];
        }
        if (room < -options_.eps) room = 0.0;
        const bool better =
            room < limit - options_.eps ||
            (bland && room < limit + options_.eps && leaving_row != rows_ &&
             basis_[i] < basis_[leaving_row]);
        if (better || (room < limit + options_.eps && leaving_row == rows_)) {
          limit = room;
          leaving_row = i;
          leaving_target = target;
        }
      }

      if (!std::isfinite(limit)) return SolveStatus::kUnbounded;

      // Apply the step.
      if (limit > 0.0) {
        value_[entering] += sigma * limit;
        for (std::size_t i = 0; i < rows_; ++i) {
          const double a = matrix_[i][entering];
          if (a != 0.0)
            value_[static_cast<std::size_t>(basis_[i])] -= sigma * a * limit;
        }
      }

      if (leaving_row == rows_) {
        // Pure bound flip; no basis change.  Snap to the exact bound.
        value_[entering] = direction > 0 ? upper_[entering] : lower_[entering];
      } else {
        const auto leaving = static_cast<std::size_t>(basis_[leaving_row]);
        value_[leaving] = leaving_target;  // snap to its bound exactly
        pivot(leaving_row, entering, reduced);
      }

      // Stall detection -> Bland's rule for guaranteed termination.
      const double objective = current_objective(active_cost);
      if (objective < last_objective - options_.eps) {
        stall = 0;
        last_objective = objective;
        bland = false;
      } else if (++stall > options_.stall_threshold) {
        bland = true;
      }
    }
    return SolveStatus::kIterationLimit;
  }

  [[nodiscard]] double current_objective(
      const std::vector<double>& active_cost) const {
    double total = 0.0;
    for (std::size_t j = 0; j < total_cols_; ++j)
      total += active_cost[j] * value_[j];
    return total;
  }

  [[nodiscard]] std::vector<double> compute_reduced_costs(
      const std::vector<double>& active_cost) const {
    // y = c_B^T * tableau accumulated row-wise, then d = c - y.
    std::vector<double> reduced = active_cost;
    for (std::size_t i = 0; i < rows_; ++i) {
      const double cb = active_cost[static_cast<std::size_t>(basis_[i])];
      if (cb == 0.0) continue;
      const auto& row = matrix_[i];
      for (std::size_t j = 0; j < total_cols_; ++j) reduced[j] -= cb * row[j];
    }
    // Basic columns have zero reduced cost by construction; clean up
    // numerical residue so pricing never selects them.
    for (std::size_t i = 0; i < rows_; ++i)
      reduced[static_cast<std::size_t>(basis_[i])] = 0.0;
    return reduced;
  }

  void pivot(std::size_t row, std::size_t entering,
             std::vector<double>& reduced) {
    const double pivot_value = matrix_[row][entering];
    OCD_ASSERT(std::abs(pivot_value) > options_.eps);
    auto& pivot_row = matrix_[row];
    const double inv = 1.0 / pivot_value;
    for (auto& entry : pivot_row) entry *= inv;
    rhs_[row] *= inv;

    for (std::size_t i = 0; i < rows_; ++i) {
      if (i == row) continue;
      const double factor = matrix_[i][entering];
      if (factor == 0.0) continue;
      auto& target = matrix_[i];
      for (std::size_t j = 0; j < total_cols_; ++j)
        target[j] -= factor * pivot_row[j];
      rhs_[i] -= factor * rhs_[row];
    }
    const double dfactor = reduced[entering];
    if (dfactor != 0.0) {
      for (std::size_t j = 0; j < total_cols_; ++j)
        reduced[j] -= dfactor * pivot_row[j];
    }

    const auto leaving = static_cast<std::size_t>(basis_[row]);
    in_basis_[leaving] = false;
    in_basis_[entering] = true;
    basis_[row] = static_cast<std::int64_t>(entering);
    reduced[entering] = 0.0;
  }

  SimplexOptions options_;
  std::size_t num_struct_ = 0;
  std::size_t rows_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  std::size_t num_artificials_ = 0;
  std::size_t total_cols_ = 0;

  std::vector<std::vector<double>> matrix_;
  std::vector<double> rhs_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<double> value_;
  std::vector<std::int64_t> basis_;
  std::vector<bool> in_basis_;
};

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  std::vector<double> lower;
  std::vector<double> upper;
  lower.reserve(static_cast<std::size_t>(lp.num_variables()));
  upper.reserve(static_cast<std::size_t>(lp.num_variables()));
  for (const Variable& v : lp.variables()) {
    lower.push_back(v.lower);
    upper.push_back(v.upper);
  }
  return solve_lp_with_bounds(lp, lower, upper, options);
}

LpSolution solve_lp_with_bounds(const LinearProgram& lp,
                                const std::vector<double>& lower,
                                const std::vector<double>& upper,
                                const SimplexOptions& options) {
  OCD_EXPECTS(lower.size() == static_cast<std::size_t>(lp.num_variables()));
  OCD_EXPECTS(upper.size() == static_cast<std::size_t>(lp.num_variables()));
  for (std::size_t j = 0; j < lower.size(); ++j) {
    if (lower[j] > upper[j]) {
      LpSolution infeasible;
      infeasible.status = SolveStatus::kInfeasible;
      return infeasible;
    }
  }
  Tableau tableau(lp, lower, upper, options);
  return tableau.solve();
}

}  // namespace ocd::lp
