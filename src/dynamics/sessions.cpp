#include "ocd/dynamics/sessions.hpp"

namespace ocd::dynamics {

SessionTrace::SessionTrace(std::vector<Session> sessions)
    : sessions_(std::move(sessions)) {
  OCD_EXPECTS(!sessions_.empty());
  for (const Session& s : sessions_) {
    OCD_EXPECTS(s.join_step >= 0);
    if (s.linger_after_complete.has_value())
      OCD_EXPECTS(*s.linger_after_complete >= 0);
  }
}

const Session& SessionTrace::session(VertexId v) const {
  OCD_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < sessions_.size());
  return sessions_[static_cast<std::size_t>(v)];
}

SessionTrace SessionTrace::steady(const core::Instance& inst,
                                  double arrival_rate, Rng& rng) {
  OCD_EXPECTS(arrival_rate > 0.0 && arrival_rate <= 1.0);
  std::vector<Session> sessions(
      static_cast<std::size_t>(inst.num_vertices()));
  std::int64_t clock = 0;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (!inst.have(v).empty()) continue;  // sources present from step 0
    // Geometric inter-arrival with success probability arrival_rate.
    std::int64_t gap = 1;
    while (!rng.chance(arrival_rate) && gap < 10'000) ++gap;
    clock += gap;
    sessions[static_cast<std::size_t>(v)].join_step = clock;
  }
  return SessionTrace(std::move(sessions));
}

SessionTrace SessionTrace::flash_crowd(const core::Instance& inst,
                                       std::int64_t burst_window, Rng& rng) {
  OCD_EXPECTS(burst_window >= 1);
  std::vector<Session> sessions(
      static_cast<std::size_t>(inst.num_vertices()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (!inst.have(v).empty()) continue;
    sessions[static_cast<std::size_t>(v)].join_step =
        static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(burst_window)));
  }
  return SessionTrace(std::move(sessions));
}

SessionDynamics::SessionDynamics(SessionTrace trace)
    : trace_(std::move(trace)) {}

void SessionDynamics::reset(const core::Instance& inst, std::uint64_t) {
  OCD_EXPECTS(trace_.size() == static_cast<std::size_t>(inst.num_vertices()));
  instance_ = &inst;
  completed_at_.assign(static_cast<std::size_t>(inst.num_vertices()), -1);
}

void SessionDynamics::observe(std::int64_t step, const core::Instance& inst,
                              const util::TokenMatrix& possession) {
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    auto& completed = completed_at_[static_cast<std::size_t>(v)];
    if (completed < 0 &&
        inst.want(v).is_subset_of(
            possession.row(static_cast<std::size_t>(v)))) {
      completed = step;
    }
  }
}

bool SessionDynamics::present(VertexId v, std::int64_t step) const {
  const Session& s = trace_.session(v);
  if (step < s.join_step) return false;
  if (s.linger_after_complete.has_value()) {
    const std::int64_t completed = completed_at_[static_cast<std::size_t>(v)];
    if (completed >= 0 && step > completed + *s.linger_after_complete)
      return false;
  }
  return true;
}

void SessionDynamics::apply(std::int64_t step, const Digraph& graph,
                            std::span<std::int32_t> capacity) {
  OCD_ASSERT(instance_ != nullptr);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (present(v, step)) continue;
    for (ArcId a : graph.out_arcs(v))
      capacity[static_cast<std::size_t>(a)] = 0;
    for (ArcId a : graph.in_arcs(v))
      capacity[static_cast<std::size_t>(a)] = 0;
  }
}

}  // namespace ocd::dynamics
