#include "ocd/dynamics/model.hpp"

#include <algorithm>
#include <cmath>

namespace ocd::dynamics {

void DynamicsModel::reset(const core::Instance&, std::uint64_t) {}

void DynamicsModel::observe(std::int64_t, const core::Instance&,
                            const util::TokenMatrix&) {}

// ---------------------------------------------------------------------
// CapacityJitter
// ---------------------------------------------------------------------
CapacityJitter::CapacityJitter(double intensity, std::int32_t min_capacity)
    : intensity_(intensity), min_capacity_(min_capacity) {
  OCD_EXPECTS(intensity >= 0.0 && intensity <= 1.0);
  OCD_EXPECTS(min_capacity >= 0);
}

void CapacityJitter::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed ^ 0x4a171e50ULL);
}

void CapacityJitter::apply(std::int64_t, const Digraph& graph,
                           std::span<std::int32_t> capacity) {
  OCD_EXPECTS(capacity.size() == static_cast<std::size_t>(graph.num_arcs()));
  if (intensity_ == 0.0) return;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const std::int32_t full = graph.arc(a).capacity;
    const auto low = static_cast<std::int32_t>(
        std::floor(static_cast<double>(full) * (1.0 - intensity_)));
    const std::int32_t lo = std::max(min_capacity_, low);
    capacity[static_cast<std::size_t>(a)] =
        lo >= full ? full
                   : static_cast<std::int32_t>(rng_.uniform_int(lo, full));
  }
}

// ---------------------------------------------------------------------
// LinkChurn
// ---------------------------------------------------------------------
LinkChurn::LinkChurn(double fail_probability, std::int32_t outage_steps)
    : fail_probability_(fail_probability), outage_steps_(outage_steps) {
  OCD_EXPECTS(fail_probability >= 0.0 && fail_probability <= 1.0);
  OCD_EXPECTS(outage_steps >= 1);
}

void LinkChurn::reset(const core::Instance& inst, std::uint64_t seed) {
  rng_ = Rng(seed ^ 0x11c0c4a1ULL);
  down_until_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), -1);
}

void LinkChurn::apply(std::int64_t step, const Digraph& graph,
                      std::span<std::int32_t> capacity) {
  OCD_EXPECTS(capacity.size() == down_until_.size());
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    auto& until = down_until_[static_cast<std::size_t>(a)];
    if (until >= step) {
      capacity[static_cast<std::size_t>(a)] = 0;
      continue;
    }
    if (rng_.chance(fail_probability_)) {
      until = step + outage_steps_ - 1;
      capacity[static_cast<std::size_t>(a)] = 0;
    }
  }
}

// ---------------------------------------------------------------------
// NodeChurn
// ---------------------------------------------------------------------
NodeChurn::NodeChurn(double leave_probability, std::int32_t absence_steps)
    : leave_probability_(leave_probability), absence_steps_(absence_steps) {
  OCD_EXPECTS(leave_probability >= 0.0 && leave_probability <= 1.0);
  OCD_EXPECTS(absence_steps >= 1);
}

void NodeChurn::set_pinned(std::vector<VertexId> pinned) {
  pinned_overridden_ = true;
  pinned_.clear();
  pinned_vertices_ = std::move(pinned);
}

void NodeChurn::reset(const core::Instance& inst, std::uint64_t seed) {
  rng_ = Rng(seed ^ 0x20dec4a1ULL);
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  away_until_.assign(n, -1);
  pinned_.assign(n, false);
  if (pinned_overridden_) {
    for (VertexId v : pinned_vertices_) {
      OCD_EXPECTS(inst.graph().valid_vertex(v));
      pinned_[static_cast<std::size_t>(v)] = true;
    }
  } else {
    // Pin every vertex that seeds content, so tokens cannot vanish.
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (!inst.have(v).empty()) pinned_[static_cast<std::size_t>(v)] = true;
    }
  }
}

void NodeChurn::apply(std::int64_t step, const Digraph& graph,
                      std::span<std::int32_t> capacity) {
  OCD_EXPECTS(away_until_.size() ==
              static_cast<std::size_t>(graph.num_vertices()));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto& until = away_until_[static_cast<std::size_t>(v)];
    if (until < step && !pinned_[static_cast<std::size_t>(v)] &&
        rng_.chance(leave_probability_)) {
      until = step + absence_steps_ - 1;
    }
    if (until >= step) {
      for (ArcId a : graph.out_arcs(v)) capacity[static_cast<std::size_t>(a)] = 0;
      for (ArcId a : graph.in_arcs(v)) capacity[static_cast<std::size_t>(a)] = 0;
    }
  }
}

}  // namespace ocd::dynamics
