#include "ocd/shard/partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "ocd/flow/max_flow.hpp"
#include "ocd/util/env.hpp"

namespace ocd::shard {

namespace {

/// Deterministic BFS traversal order over the undirected skeleton:
/// lowest-id unvisited seed, neighbors in adjacency (CSR) order, out-
/// arcs before in-arcs.  Covers every vertex even in disconnected
/// graphs (each component restarts from its lowest id).
std::vector<VertexId> bfs_order(const Digraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId seed = 0; seed < graph.num_vertices(); ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    visited[static_cast<std::size_t>(seed)] = 1;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      order.push_back(v);
      for (ArcId a : graph.out_arcs(v)) {
        const VertexId w = graph.arc(a).to;
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
      for (ArcId a : graph.in_arcs(v)) {
        const VertexId w = graph.arc(a).from;
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
  }
  return order;
}

/// FlowCutter-style pair refinement: one solver + scratch set shared
/// across every (a, b) pair so the whole stage allocates only up to its
/// high-water mark.
class FlowRefiner {
 public:
  FlowRefiner(const Digraph& graph, std::vector<std::int32_t>& shard_of,
              std::vector<std::int64_t>& sizes, std::int64_t lo,
              std::int64_t hi, std::int32_t region_limit,
              std::int64_t auto_limit)
      : graph_(graph),
        shard_of_(shard_of),
        sizes_(sizes),
        lo_(lo),
        hi_(hi),
        region_limit_(region_limit),
        auto_limit_(auto_limit),
        is_boundary_(static_cast<std::size_t>(graph.num_vertices()), 0),
        in_region_(static_cast<std::size_t>(graph.num_vertices()), 0),
        local_id_(static_cast<std::size_t>(graph.num_vertices()), -1) {}

  /// Attempts to shrink the a-b cut; mutates shard_of_/sizes_ when a
  /// strictly better in-band reassignment exists.  Two attempts: a wide
  /// corridor first (finds the big separator-crossing cuts, but its min
  /// cut can be too lopsided for the band), then — if nothing was
  /// adopted — a band-safe corridor whose region sizes guarantee every
  /// cut is adoptable, so a strict local improvement is never forfeited
  /// to the balance check.
  void refine_pair(std::int32_t a, std::int32_t b) {
    collect_boundary(a, b);
    if (pair_cut_ == 0) return;  // blocks not adjacent
    if (!attempt(a, b, /*band_safe=*/false)) attempt(a, b, /*band_safe=*/true);
    for (const VertexId v : boundary_)
      is_boundary_[static_cast<std::size_t>(v)] = 0;
  }

 private:
  // One corridor extraction + solve + (possibly) adoption.  Returns
  // whether a reassignment was adopted; always clears the region
  // scratch so the next attempt or pair starts clean.
  bool attempt(std::int32_t a, std::int32_t b, bool band_safe) {
    grow_region(a, region_a_, region_cap(a, b, band_safe));
    grow_region(b, region_b_, region_cap(b, a, band_safe));
    bool adopted = false;
    if (!region_a_.empty() && !region_b_.empty()) {
      const flow::MaxFlow::Flow flow_value = build_and_solve(a, b);
      const std::int64_t fixed = fixed_cut(a, b);
      if (flow_value + fixed < pair_cut_) {
        // Source-reachable cut first, the sink-reaching one as
        // fallback: same value, differently balanced sides.
        adopted = apply_side(a, b, /*sink_side=*/false);
        if (!adopted) {
          mf_.compute_sink_side();
          adopted = apply_side(a, b, /*sink_side=*/true);
        }
      }
    }
    clear_regions();
    return adopted;
  }

  // Per-side region cap.  The band-safe cap bounds the worst case of
  // any cut (one side moves wholesale) to stay inside the band:
  //   new_self >= size_self - |region_self| >= lo  and
  //   new_other <= size_other + |region_self| <= hi.
  // The wide cap only guards the contraction anchor (never more than
  // half the block, so the s/t core stays non-empty) and the configured
  // or auto resource limit.
  [[nodiscard]] std::int64_t region_cap(std::int32_t self,
                                        std::int32_t other,
                                        bool band_safe) const {
    const std::int64_t size_self = sizes_[static_cast<std::size_t>(self)];
    std::int64_t cap = size_self / 2;
    if (band_safe)
      cap = std::min(
          cap, std::min(size_self - lo_,
                        hi_ - sizes_[static_cast<std::size_t>(other)]));
    if (region_limit_ > 0) return std::min<std::int64_t>(cap, region_limit_);
    if (band_safe) return cap;
    // Auto mode: scale with this side's boundary — a region smaller
    // than its own boundary pins most crossing arcs in fixed_cut and
    // cannot improve anything.
    std::int64_t seeds = 0;
    for (const VertexId v : boundary_)
      if (shard_of_[static_cast<std::size_t>(v)] == self) ++seeds;
    return std::min(cap, std::max(auto_limit_, 2 * seeds));
  }

  // Boundary = endpoints of a-b crossing arcs.  Every crossing arc's
  // tail is scanned exactly once via out-arcs of both blocks, so
  // pair_cut_ counts directed crossings exactly.
  void collect_boundary(std::int32_t a, std::int32_t b) {
    boundary_.clear();
    pair_cut_ = 0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      const std::int32_t sv = shard_of_[static_cast<std::size_t>(v)];
      if (sv != a && sv != b) continue;
      const std::int32_t other = sv == a ? b : a;
      for (ArcId arc : graph_.out_arcs(v)) {
        const VertexId w = graph_.arc(arc).to;
        if (shard_of_[static_cast<std::size_t>(w)] != other) continue;
        ++pair_cut_;
        if (!is_boundary_[static_cast<std::size_t>(v)]) {
          is_boundary_[static_cast<std::size_t>(v)] = 1;
          boundary_.push_back(v);
        }
        if (!is_boundary_[static_cast<std::size_t>(w)]) {
          is_boundary_[static_cast<std::size_t>(w)] = 1;
          boundary_.push_back(w);
        }
      }
    }
    std::sort(boundary_.begin(), boundary_.end());
  }

  // Region per side: BFS from the boundary inside the block, ascending
  // seed order, out- before in-arcs, truncated at `cap` vertices (see
  // region_cap; a non-positive cap yields an empty region and the
  // caller gives up on this attempt).
  void grow_region(std::int32_t block, std::vector<VertexId>& region,
                   std::int64_t cap) {
    region.clear();
    for (const VertexId v : boundary_) {
      if (shard_of_[static_cast<std::size_t>(v)] != block) continue;
      if (static_cast<std::int64_t>(region.size()) >= cap) break;
      if (in_region_[static_cast<std::size_t>(v)]) continue;
      in_region_[static_cast<std::size_t>(v)] = 1;
      region.push_back(v);
    }
    const auto admit = [&](VertexId w) {
      if (shard_of_[static_cast<std::size_t>(w)] != block) return;
      if (in_region_[static_cast<std::size_t>(w)]) return;
      if (static_cast<std::int64_t>(region.size()) >= cap) return;
      in_region_[static_cast<std::size_t>(w)] = 1;
      region.push_back(w);
    };
    for (std::size_t head = 0; head < region.size(); ++head) {
      const VertexId v = region[head];
      for (ArcId arc : graph_.out_arcs(v)) admit(graph_.arc(arc).to);
      for (ArcId arc : graph_.in_arcs(v)) admit(graph_.arc(arc).from);
    }
  }

  // Arcs whose endpoints are both truncated boundary vertices can never
  // change sides; they stay cut whatever the flow says.
  [[nodiscard]] std::int64_t fixed_cut(std::int32_t a, std::int32_t b) const {
    std::int64_t fixed = 0;
    for (const VertexId v : boundary_) {
      if (in_region_[static_cast<std::size_t>(v)]) continue;
      const std::int32_t sv = shard_of_[static_cast<std::size_t>(v)];
      const std::int32_t other = sv == a ? b : a;
      for (ArcId arc : graph_.out_arcs(v)) {
        const VertexId w = graph_.arc(arc).to;
        if (shard_of_[static_cast<std::size_t>(w)] == other &&
            !in_region_[static_cast<std::size_t>(w)])
          ++fixed;
      }
    }
    return fixed;
  }

  // Local network: terminal s = 0 (the contracted core of a), t = 1
  // (core of b), region vertices from 2.  Each directed overlay arc is
  // one unit-capacity *undirected* flow edge — a separated unordered
  // pair with arcs both ways costs 2, matching the cut_arcs count.
  flow::MaxFlow::Flow build_and_solve(std::int32_t a, std::int32_t b) {
    std::int32_t next = 2;
    for (const VertexId v : region_a_)
      local_id_[static_cast<std::size_t>(v)] = next++;
    for (const VertexId v : region_b_)
      local_id_[static_cast<std::size_t>(v)] = next++;
    mf_.reset(next);
    const auto endpoint = [&](VertexId w) -> std::int32_t {
      if (in_region_[static_cast<std::size_t>(w)])
        return local_id_[static_cast<std::size_t>(w)];
      const std::int32_t sw = shard_of_[static_cast<std::size_t>(w)];
      if (sw == a) return 0;
      if (sw == b) return 1;
      return -1;  // third block: the a-b cut does not price this arc
    };
    const auto add_edges_of = [&](const std::vector<VertexId>& region) {
      for (const VertexId u : region) {
        const std::int32_t lu = local_id_[static_cast<std::size_t>(u)];
        for (ArcId arc : graph_.out_arcs(u)) {
          const std::int32_t lw = endpoint(graph_.arc(arc).to);
          if (lw >= 0) mf_.add_edge(lu, lw, 1, 1);
        }
        for (ArcId arc : graph_.in_arcs(u)) {
          const VertexId w = graph_.arc(arc).from;
          // Region-region arcs were added by the tail's out-scan.
          if (in_region_[static_cast<std::size_t>(w)]) continue;
          const std::int32_t lw = endpoint(w);
          if (lw >= 0) mf_.add_edge(lu, lw, 1, 1);
        }
      }
    };
    add_edges_of(region_a_);
    add_edges_of(region_b_);
    return mf_.run(0, 1);
  }

  // Adopts one canonical min cut when its reassignment keeps both
  // blocks in the balance band.  Vertices on the source side belong to
  // a, the rest to b; offsetting moves may cancel, which is how a tight
  // band (k | n, eps = 0) can still improve via swaps.
  bool apply_side(std::int32_t a, std::int32_t b, bool sink_side) {
    const auto target = [&](VertexId v) {
      const std::int32_t lv = local_id_[static_cast<std::size_t>(v)];
      const bool source_side =
          sink_side ? !mf_.in_sink_side(lv) : mf_.in_source_side(lv);
      return source_side ? a : b;
    };
    std::int64_t delta_a = 0;  // net ownership change of block a
    for (const VertexId v : region_a_)
      if (target(v) == b) --delta_a;
    for (const VertexId v : region_b_)
      if (target(v) == a) ++delta_a;
    const std::int64_t new_a = sizes_[static_cast<std::size_t>(a)] + delta_a;
    const std::int64_t new_b = sizes_[static_cast<std::size_t>(b)] - delta_a;
    if (new_a < lo_ || new_a > hi_ || new_b < lo_ || new_b > hi_)
      return false;
    for (const VertexId v : region_a_)
      shard_of_[static_cast<std::size_t>(v)] = target(v);
    for (const VertexId v : region_b_)
      shard_of_[static_cast<std::size_t>(v)] = target(v);
    sizes_[static_cast<std::size_t>(a)] = new_a;
    sizes_[static_cast<std::size_t>(b)] = new_b;
    return true;
  }

  // Region scratch only — boundary flags outlive both attempts of a
  // pair and are cleared by refine_pair.
  void clear_regions() {
    for (const VertexId v : region_a_) {
      in_region_[static_cast<std::size_t>(v)] = 0;
      local_id_[static_cast<std::size_t>(v)] = -1;
    }
    for (const VertexId v : region_b_) {
      in_region_[static_cast<std::size_t>(v)] = 0;
      local_id_[static_cast<std::size_t>(v)] = -1;
    }
  }

  const Digraph& graph_;
  std::vector<std::int32_t>& shard_of_;
  std::vector<std::int64_t>& sizes_;
  const std::int64_t lo_;
  const std::int64_t hi_;
  const std::int32_t region_limit_;  ///< hard per-side cap; 0 = auto
  const std::int64_t auto_limit_;    ///< floor of the auto cap
  flow::MaxFlow mf_;
  std::vector<char> is_boundary_;
  std::vector<char> in_region_;
  std::vector<std::int32_t> local_id_;
  std::vector<VertexId> boundary_;
  std::vector<VertexId> region_a_;
  std::vector<VertexId> region_b_;
  std::int64_t pair_cut_ = 0;
};

}  // namespace

std::int32_t resolve_balance_eps(std::int32_t requested) {
  if (requested >= 0) {
    if (requested > 100)
      throw Error("balance_eps must be in [0, 100] percent, got " +
                  std::to_string(requested));
    return requested;
  }
  if (requested < -1)
    throw Error("balance_eps must be >= -1, got " +
                std::to_string(requested));
  const char* env = std::getenv("OCD_SHARD_BALANCE_EPS");
  if (env == nullptr) return 0;
  return static_cast<std::int32_t>(
      util::parse_env_nonneg_int("OCD_SHARD_BALANCE_EPS", env, 100));
}

Partition partition_vertices(const Digraph& graph, std::int32_t num_shards,
                             std::int32_t refinement_sweeps) {
  PartitionOptions options;
  options.num_shards = num_shards;
  options.refinement_sweeps = refinement_sweeps;
  options.balance_eps = 0;  // historical exact band, env-independent
  return partition_vertices(graph, options);
}

Partition partition_vertices(const Digraph& graph,
                             const PartitionOptions& options) {
  const std::int32_t n = graph.num_vertices();
  const std::int32_t num_shards = options.num_shards;
  OCD_EXPECTS(num_shards >= 1);
  OCD_EXPECTS(num_shards <= std::max(n, 1));
  OCD_EXPECTS(options.refinement_sweeps >= 0);
  OCD_EXPECTS(options.flow_region_limit >= 0);
  const std::int32_t eps = resolve_balance_eps(options.balance_eps);

  Partition part;
  part.num_shards = num_shards;
  part.shard_of.assign(static_cast<std::size_t>(n), 0);

  // Phase 1 — BFS-grow: chop the traversal order into num_shards
  // consecutive blocks; the first n%num_shards blocks take the ceiling
  // size so every shard lands in [lo, hi] exactly.  Consecutive BFS
  // vertices are graph-close, so blocks start out with most of their
  // adjacency internal.
  const auto hi =
      static_cast<std::int64_t>((n + num_shards - 1) / num_shards);
  const auto lo = static_cast<std::int64_t>(n / num_shards);
  const auto big_blocks = static_cast<std::int64_t>(n % num_shards);
  const std::vector<VertexId> order = bfs_order(graph);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto pos = static_cast<std::int64_t>(i);
    const std::int64_t s =
        pos < big_blocks * hi
            ? pos / std::max<std::int64_t>(hi, 1)
            : big_blocks + (pos - big_blocks * hi) /
                               std::max<std::int64_t>(lo, 1);
    part.shard_of[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(std::min<std::int64_t>(s, num_shards - 1));
  }

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_shards), 0);
  for (std::int32_t s : part.shard_of) ++sizes[static_cast<std::size_t>(s)];

  // The eps-relaxed balance band both refinement stages must respect.
  // eps = 0 is the exact [lo, hi] band; the lower bound never drops
  // under 1, so no shard can be refined empty.
  const std::int64_t slack = eps * lo / 100;
  const std::int64_t lo_band = std::max<std::int64_t>(1, lo - slack);
  const std::int64_t hi_band =
      std::min<std::int64_t>(std::max<std::int64_t>(n, 1), hi + slack);

  // Phase 2 — greedy refinement sweeps in vertex-id order: move a
  // vertex to the shard holding the (strict) majority of its neighbors
  // when the move keeps every shard size within the band.  Gains are
  // evaluated against the current labels, so each sweep is
  // deterministic and terminates by construction; later sweeps see the
  // earlier ones' labels and keep chipping at the cut until a sweep
  // moves nothing (a local minimum) or the sweep budget runs out.
  if (num_shards > 1) {
    std::vector<std::int64_t> freq(static_cast<std::size_t>(num_shards), 0);
    std::vector<std::int32_t> seen;
    seen.reserve(16);
    for (std::int32_t sweep = 0; sweep < options.refinement_sweeps; ++sweep) {
      std::int64_t moved = 0;
      for (VertexId v = 0; v < n; ++v) {
        const auto cur = static_cast<std::size_t>(
            part.shard_of[static_cast<std::size_t>(v)]);
        seen.clear();
        const auto tally = [&](VertexId w) {
          const auto s = static_cast<std::size_t>(
              part.shard_of[static_cast<std::size_t>(w)]);
          if (freq[s] == 0) seen.push_back(static_cast<std::int32_t>(s));
          ++freq[s];
        };
        for (ArcId a : graph.out_arcs(v)) tally(graph.arc(a).to);
        for (ArcId a : graph.in_arcs(v)) tally(graph.arc(a).from);
        std::int32_t best = static_cast<std::int32_t>(cur);
        std::int64_t best_freq = freq[cur];
        std::sort(seen.begin(), seen.end());  // lowest shard id wins ties
        for (std::int32_t s : seen) {
          if (freq[static_cast<std::size_t>(s)] > best_freq) {
            best_freq = freq[static_cast<std::size_t>(s)];
            best = s;
          }
        }
        for (std::int32_t s : seen) freq[static_cast<std::size_t>(s)] = 0;
        if (best != static_cast<std::int32_t>(cur) && sizes[cur] > lo_band &&
            sizes[static_cast<std::size_t>(best)] < hi_band) {
          part.shard_of[static_cast<std::size_t>(v)] = best;
          --sizes[cur];
          ++sizes[static_cast<std::size_t>(best)];
          ++moved;
        }
      }
      if (moved == 0) break;
    }
  }

  // Phase 3 — opt-in flow refinement: one pass over adjacent block
  // pairs in ascending (a, b) order; each pair's boundary region is
  // re-read from the labels the previous pairs left behind.
  if (options.flow_refine && num_shards > 1) {
    const std::int64_t auto_limit =
        std::max<std::int64_t>(256, 4 * (hi_band - lo_band + 1));
    FlowRefiner refiner(graph, part.shard_of, sizes, lo_band, hi_band,
                        options.flow_region_limit, auto_limit);
    for (std::int32_t a = 0; a < num_shards; ++a)
      for (std::int32_t b = a + 1; b < num_shards; ++b)
        refiner.refine_pair(a, b);
  }

  // Ownership lists (ascending by construction).
  part.owned.assign(static_cast<std::size_t>(num_shards), {});
  for (std::size_t s = 0; s < sizes.size(); ++s)
    part.owned[s].reserve(static_cast<std::size_t>(sizes[s]));
  for (VertexId v = 0; v < n; ++v)
    part.owned[static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(v)])]
        .push_back(v);

  // Cut arcs (ascending arc id) and ghost flags: a cross arc makes each
  // endpoint a ghost of the other endpoint's shard.
  std::vector<std::vector<char>> ghost_flag(
      static_cast<std::size_t>(num_shards),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    const std::int32_t sf = part.shard_of[static_cast<std::size_t>(arc.from)];
    const std::int32_t st = part.shard_of[static_cast<std::size_t>(arc.to)];
    if (sf == st) continue;
    part.cut_arcs.push_back({a, sf, st});
    ghost_flag[static_cast<std::size_t>(st)][static_cast<std::size_t>(
        arc.from)] = 1;
    ghost_flag[static_cast<std::size_t>(sf)][static_cast<std::size_t>(
        arc.to)] = 1;
  }
  part.ghosts.assign(static_cast<std::size_t>(num_shards), {});
  for (std::size_t s = 0; s < part.ghosts.size(); ++s) {
    for (VertexId v = 0; v < n; ++v)
      if (ghost_flag[s][static_cast<std::size_t>(v)])
        part.ghosts[s].push_back(v);
  }

  part.stats.num_shards = num_shards;
  part.stats.total_arcs = graph.num_arcs();
  part.stats.cut_arcs = static_cast<std::int64_t>(part.cut_arcs.size());
  part.stats.min_owned = n == 0 ? 0 : *std::min_element(sizes.begin(),
                                                        sizes.end());
  part.stats.max_owned = n == 0 ? 0 : *std::max_element(sizes.begin(),
                                                        sizes.end());
  for (const auto& g : part.ghosts)
    part.stats.total_ghosts += static_cast<std::int64_t>(g.size());
  return part;
}

SubInstance extract_sub_instance(const core::Instance& instance,
                                 const Partition& partition,
                                 std::int32_t shard) {
  OCD_EXPECTS(shard >= 0 && shard < partition.num_shards);
  const Digraph& graph = instance.graph();
  const auto s = static_cast<std::size_t>(shard);

  SubInstance sub;
  // Local vertex set = owned ∪ ghosts, ascending (both inputs sorted).
  sub.to_global.resize(partition.owned[s].size() + partition.ghosts[s].size());
  std::merge(partition.owned[s].begin(), partition.owned[s].end(),
             partition.ghosts[s].begin(), partition.ghosts[s].end(),
             sub.to_global.begin());

  std::vector<std::int32_t> to_local(
      static_cast<std::size_t>(graph.num_vertices()), -1);
  for (std::size_t i = 0; i < sub.to_global.size(); ++i)
    to_local[static_cast<std::size_t>(sub.to_global[i])] =
        static_cast<std::int32_t>(i);

  Digraph local(static_cast<std::int32_t>(sub.to_global.size()));
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    const bool from_owned =
        partition.shard_of[static_cast<std::size_t>(arc.from)] == shard;
    const bool to_owned =
        partition.shard_of[static_cast<std::size_t>(arc.to)] == shard;
    if (!from_owned && !to_owned) continue;  // ghost-ghost: never consulted
    local.add_arc(to_local[static_cast<std::size_t>(arc.from)],
                  to_local[static_cast<std::size_t>(arc.to)], arc.capacity);
    sub.arc_to_global.push_back(a);
  }
  local.finalize();

  sub.instance = core::Instance(std::move(local), instance.num_tokens());
  for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
    sub.instance.set_have(static_cast<VertexId>(i),
                          instance.have(sub.to_global[i]));
    sub.instance.set_want(static_cast<VertexId>(i),
                          instance.want(sub.to_global[i]));
  }
  return sub;
}

}  // namespace ocd::shard
