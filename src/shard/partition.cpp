#include "ocd/shard/partition.hpp"

#include <algorithm>

namespace ocd::shard {

namespace {

/// Deterministic BFS traversal order over the undirected skeleton:
/// lowest-id unvisited seed, neighbors in adjacency (CSR) order, out-
/// arcs before in-arcs.  Covers every vertex even in disconnected
/// graphs (each component restarts from its lowest id).
std::vector<VertexId> bfs_order(const Digraph& graph) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId seed = 0; seed < graph.num_vertices(); ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    visited[static_cast<std::size_t>(seed)] = 1;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      order.push_back(v);
      for (ArcId a : graph.out_arcs(v)) {
        const VertexId w = graph.arc(a).to;
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
      for (ArcId a : graph.in_arcs(v)) {
        const VertexId w = graph.arc(a).from;
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
  }
  return order;
}

}  // namespace

Partition partition_vertices(const Digraph& graph, std::int32_t num_shards,
                             std::int32_t refinement_sweeps) {
  const std::int32_t n = graph.num_vertices();
  OCD_EXPECTS(num_shards >= 1);
  OCD_EXPECTS(num_shards <= std::max(n, 1));
  OCD_EXPECTS(refinement_sweeps >= 0);

  Partition part;
  part.num_shards = num_shards;
  part.shard_of.assign(static_cast<std::size_t>(n), 0);

  // Phase 1 — BFS-grow: chop the traversal order into num_shards
  // consecutive blocks; the first n%num_shards blocks take the ceiling
  // size so every shard lands in [lo, hi] exactly.  Consecutive BFS
  // vertices are graph-close, so blocks start out with most of their
  // adjacency internal.
  const auto hi =
      static_cast<std::int64_t>((n + num_shards - 1) / num_shards);
  const auto lo = static_cast<std::int64_t>(n / num_shards);
  const auto big_blocks = static_cast<std::int64_t>(n % num_shards);
  const std::vector<VertexId> order = bfs_order(graph);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto pos = static_cast<std::int64_t>(i);
    const std::int64_t s =
        pos < big_blocks * hi
            ? pos / std::max<std::int64_t>(hi, 1)
            : big_blocks + (pos - big_blocks * hi) /
                               std::max<std::int64_t>(lo, 1);
    part.shard_of[static_cast<std::size_t>(order[i])] =
        static_cast<std::int32_t>(std::min<std::int64_t>(s, num_shards - 1));
  }

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_shards), 0);
  for (std::int32_t s : part.shard_of) ++sizes[static_cast<std::size_t>(s)];

  // Phase 2 — greedy refinement sweeps in vertex-id order: move a
  // vertex to the shard holding the (strict) majority of its neighbors
  // when the move keeps every shard size within [lo, hi].  Gains are
  // evaluated against the current labels, so each sweep is
  // deterministic and terminates by construction; later sweeps see the
  // earlier ones' labels and keep chipping at the cut until a sweep
  // moves nothing (a local minimum) or the sweep budget runs out.
  if (num_shards > 1) {
    std::vector<std::int64_t> freq(static_cast<std::size_t>(num_shards), 0);
    std::vector<std::int32_t> seen;
    seen.reserve(16);
    for (std::int32_t sweep = 0; sweep < refinement_sweeps; ++sweep) {
      std::int64_t moved = 0;
      for (VertexId v = 0; v < n; ++v) {
        const auto cur = static_cast<std::size_t>(
            part.shard_of[static_cast<std::size_t>(v)]);
        seen.clear();
        const auto tally = [&](VertexId w) {
          const auto s = static_cast<std::size_t>(
              part.shard_of[static_cast<std::size_t>(w)]);
          if (freq[s] == 0) seen.push_back(static_cast<std::int32_t>(s));
          ++freq[s];
        };
        for (ArcId a : graph.out_arcs(v)) tally(graph.arc(a).to);
        for (ArcId a : graph.in_arcs(v)) tally(graph.arc(a).from);
        std::int32_t best = static_cast<std::int32_t>(cur);
        std::int64_t best_freq = freq[cur];
        std::sort(seen.begin(), seen.end());  // lowest shard id wins ties
        for (std::int32_t s : seen) {
          if (freq[static_cast<std::size_t>(s)] > best_freq) {
            best_freq = freq[static_cast<std::size_t>(s)];
            best = s;
          }
        }
        for (std::int32_t s : seen) freq[static_cast<std::size_t>(s)] = 0;
        if (best != static_cast<std::int32_t>(cur) && sizes[cur] > lo &&
            sizes[static_cast<std::size_t>(best)] < hi) {
          part.shard_of[static_cast<std::size_t>(v)] = best;
          --sizes[cur];
          ++sizes[static_cast<std::size_t>(best)];
          ++moved;
        }
      }
      if (moved == 0) break;
    }
  }

  // Ownership lists (ascending by construction).
  part.owned.assign(static_cast<std::size_t>(num_shards), {});
  for (std::size_t s = 0; s < sizes.size(); ++s)
    part.owned[s].reserve(static_cast<std::size_t>(sizes[s]));
  for (VertexId v = 0; v < n; ++v)
    part.owned[static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(v)])]
        .push_back(v);

  // Cut arcs (ascending arc id) and ghost flags: a cross arc makes each
  // endpoint a ghost of the other endpoint's shard.
  std::vector<std::vector<char>> ghost_flag(
      static_cast<std::size_t>(num_shards),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    const std::int32_t sf = part.shard_of[static_cast<std::size_t>(arc.from)];
    const std::int32_t st = part.shard_of[static_cast<std::size_t>(arc.to)];
    if (sf == st) continue;
    part.cut_arcs.push_back({a, sf, st});
    ghost_flag[static_cast<std::size_t>(st)][static_cast<std::size_t>(
        arc.from)] = 1;
    ghost_flag[static_cast<std::size_t>(sf)][static_cast<std::size_t>(
        arc.to)] = 1;
  }
  part.ghosts.assign(static_cast<std::size_t>(num_shards), {});
  for (std::size_t s = 0; s < part.ghosts.size(); ++s) {
    for (VertexId v = 0; v < n; ++v)
      if (ghost_flag[s][static_cast<std::size_t>(v)])
        part.ghosts[s].push_back(v);
  }

  part.stats.num_shards = num_shards;
  part.stats.total_arcs = graph.num_arcs();
  part.stats.cut_arcs = static_cast<std::int64_t>(part.cut_arcs.size());
  part.stats.min_owned = n == 0 ? 0 : *std::min_element(sizes.begin(),
                                                        sizes.end());
  part.stats.max_owned = n == 0 ? 0 : *std::max_element(sizes.begin(),
                                                        sizes.end());
  for (const auto& g : part.ghosts)
    part.stats.total_ghosts += static_cast<std::int64_t>(g.size());
  return part;
}

SubInstance extract_sub_instance(const core::Instance& instance,
                                 const Partition& partition,
                                 std::int32_t shard) {
  OCD_EXPECTS(shard >= 0 && shard < partition.num_shards);
  const Digraph& graph = instance.graph();
  const auto s = static_cast<std::size_t>(shard);

  SubInstance sub;
  // Local vertex set = owned ∪ ghosts, ascending (both inputs sorted).
  sub.to_global.resize(partition.owned[s].size() + partition.ghosts[s].size());
  std::merge(partition.owned[s].begin(), partition.owned[s].end(),
             partition.ghosts[s].begin(), partition.ghosts[s].end(),
             sub.to_global.begin());

  std::vector<std::int32_t> to_local(
      static_cast<std::size_t>(graph.num_vertices()), -1);
  for (std::size_t i = 0; i < sub.to_global.size(); ++i)
    to_local[static_cast<std::size_t>(sub.to_global[i])] =
        static_cast<std::int32_t>(i);

  Digraph local(static_cast<std::int32_t>(sub.to_global.size()));
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    const bool from_owned =
        partition.shard_of[static_cast<std::size_t>(arc.from)] == shard;
    const bool to_owned =
        partition.shard_of[static_cast<std::size_t>(arc.to)] == shard;
    if (!from_owned && !to_owned) continue;  // ghost-ghost: never consulted
    local.add_arc(to_local[static_cast<std::size_t>(arc.from)],
                  to_local[static_cast<std::size_t>(arc.to)], arc.capacity);
    sub.arc_to_global.push_back(a);
  }
  local.finalize();

  sub.instance = core::Instance(std::move(local), instance.num_tokens());
  for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
    sub.instance.set_have(static_cast<VertexId>(i),
                          instance.have(sub.to_global[i]));
    sub.instance.set_want(static_cast<VertexId>(i),
                          instance.want(sub.to_global[i]));
  }
  return sub;
}

}  // namespace ocd::shard
