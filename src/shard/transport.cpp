#include "ocd/shard/transport.hpp"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>

#include "ocd/faults/model.hpp"
#include "ocd/util/parallel.hpp"

namespace ocd::shard {

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

std::vector<std::string> InProcessTransport::run(const RunContext& ctx) {
  const std::int32_t num_shards = ctx.partition->num_shards;
  const auto count = static_cast<std::size_t>(num_shards);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(count);
  for (std::int32_t s = 0; s < num_shards; ++s)
    workers.push_back(std::make_unique<ShardWorker>(ctx, s));

  // Two mailbox grids per round trip: workers write their outbox row in
  // parallel, the driver transposes at the barrier, then workers read
  // their inbox — a phase never reads a grid a peer is still writing.
  std::vector<std::vector<std::string>> outbox(count), inbox(count);
  for (auto& row : inbox) row.assign(count, {});
  const auto transpose = [&] {
    for (std::size_t src = 0; src < count; ++src)
      for (std::size_t dst = 0; dst < count; ++dst)
        if (src != dst) inbox[dst][src] = std::move(outbox[src][dst]);
  };
  const auto each = [&](auto&& fn) {
    util::parallel_for(count, 1, [&](util::ChunkRange chunk) {
      for (std::size_t s = chunk.begin; s < chunk.end; ++s) fn(s);
    });
  };

  each([&](std::size_t s) { workers[s]->phase_init(outbox[s]); });
  transpose();
  each([&](std::size_t s) { workers[s]->absorb_init(inbox[s]); });

  const bool driver_faults =
      !ctx.worker_advances_faults && ctx.sim.faults != nullptr;
  while (workers[0]->running()) {
    if (driver_faults)
      ctx.sim.faults->begin_step(workers[0]->step(), ctx.instance->graph());
    each([&](std::size_t s) { workers[s]->phase_plan(outbox[s]); });
    transpose();
    each([&](std::size_t s) { workers[s]->phase_apply(inbox[s], outbox[s]); });
    transpose();
    each([&](std::size_t s) { workers[s]->phase_commit(inbox[s]); });
    for (std::size_t s = 1; s < count; ++s)
      OCD_ASSERT_MSG(workers[s]->running() == workers[0]->running(),
                     "shards disagree on continuation");
  }

  std::vector<std::string> fragments(count);
  for (std::size_t s = 0; s < count; ++s)
    fragments[s] = workers[s]->finish_fragment();
  return fragments;
}

// ---------------------------------------------------------------------
// Forked one-host transport
// ---------------------------------------------------------------------

namespace {

/// EINTR-safe full read; throws on EOF or error (a dead child).
void read_all(int fd, void* buffer, std::size_t n, const char* what) {
  auto* out = static_cast<char*>(buffer);
  while (n > 0) {
    const ssize_t got = ::read(fd, out, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("shard transport: read failed (") + what +
                  "): " + std::strerror(errno));
    }
    if (got == 0)
      throw Error(std::string("shard transport: unexpected EOF (") + what +
                  ") — a shard process died");
    out += got;
    n -= static_cast<std::size_t>(got);
  }
}

void write_all(int fd, const void* buffer, std::size_t n, const char* what) {
  const auto* in = static_cast<const char*>(buffer);
  while (n > 0) {
    const ssize_t put = ::write(fd, in, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("shard transport: write failed (") + what +
                  "): " + std::strerror(errno));
    }
    in += put;
    n -= static_cast<std::size_t>(put);
  }
}

constexpr std::uint32_t kMaxFrame = 1u << 30;  // 1 GiB sanity bound

/// Frame: [u32 peer][u32 len][len bytes].  `peer` is the destination
/// shard child->parent and the source shard parent->child.
void write_frame(int fd, std::uint32_t peer, const std::string& bytes,
                 const char* what) {
  const auto len = static_cast<std::uint32_t>(bytes.size());
  write_all(fd, &peer, sizeof(peer), what);
  write_all(fd, &len, sizeof(len), what);
  if (len > 0) write_all(fd, bytes.data(), len, what);
}

std::pair<std::uint32_t, std::string> read_frame(int fd, const char* what) {
  std::uint32_t peer = 0;
  std::uint32_t len = 0;
  read_all(fd, &peer, sizeof(peer), what);
  read_all(fd, &len, sizeof(len), what);
  if (len > kMaxFrame)
    throw Error(std::string("shard transport: oversized frame (") + what +
                ")");
  std::string bytes(len, '\0');
  if (len > 0) read_all(fd, bytes.data(), len, what);
  return {peer, std::move(bytes)};
}

/// Child side: send this shard's round messages, then receive the
/// peers' messages.  Children always write their full round before
/// reading, and the parent always reads every child before writing, so
/// the star cannot deadlock regardless of socket buffer sizes.
void child_round(int fd, std::int32_t self, std::vector<std::string>& out,
                 std::vector<std::string>& in, const char* what) {
  const auto count = out.size();
  for (std::size_t dst = 0; dst < count; ++dst) {
    if (dst == static_cast<std::size_t>(self)) continue;
    write_frame(fd, static_cast<std::uint32_t>(dst), out[dst], what);
  }
  in.assign(count, {});
  for (std::size_t i = 0; i + 1 < count; ++i) {
    auto [src, bytes] = read_frame(fd, what);
    if (src >= count || src == static_cast<std::uint32_t>(self) ||
        !in[src].empty())
      throw Error(std::string("shard transport: bad source shard (") + what +
                  ")");
    in[src] = std::move(bytes);
  }
}

/// Child main loop.  Status bytes keep parent and children in lockstep:
/// 0 = another step follows, 1 = the run is over.
void child_loop(int fd, const RunContext& ctx, std::int32_t shard) {
  ShardWorker worker(ctx, shard);
  const auto count = static_cast<std::size_t>(ctx.partition->num_shards);
  std::vector<std::string> out(count), in(count);

  const auto handshake = [&] {
    const std::uint8_t status = worker.running() ? 0 : 1;
    write_all(fd, &status, 1, "status");
    std::uint8_t ack = 0;
    read_all(fd, &ack, 1, "ack");
    if (ack != status)
      throw Error("shard transport: shards disagree on continuation");
  };

  worker.phase_init(out);
  child_round(fd, shard, out, in, "init");
  worker.absorb_init(in);
  handshake();
  while (worker.running()) {
    worker.phase_plan(out);
    child_round(fd, shard, out, in, "plan");
    worker.phase_apply(in, out);
    child_round(fd, shard, out, in, "apply");
    worker.phase_commit(in);
    handshake();
  }
  const std::string fragment = worker.finish_fragment();
  write_frame(fd, static_cast<std::uint32_t>(shard), fragment, "fragment");
}

/// Parent side of one message round: drain every child's outgoing
/// frames, then deliver each child its peers' messages.
void route_round(const std::vector<int>& fds, const char* what) {
  const auto count = fds.size();
  std::vector<std::vector<std::string>> mail(
      count, std::vector<std::string>(count));
  for (std::size_t src = 0; src < count; ++src) {
    for (std::size_t i = 0; i + 1 < count; ++i) {
      auto [dst, bytes] = read_frame(fds[src], what);
      if (dst >= count || dst == src)
        throw Error(std::string("shard transport: bad destination shard (") +
                    what + ")");
      mail[src][dst] = std::move(bytes);
    }
  }
  for (std::size_t dst = 0; dst < count; ++dst)
    for (std::size_t src = 0; src < count; ++src)
      if (src != dst)
        write_frame(fds[dst], static_cast<std::uint32_t>(src), mail[src][dst],
                    what);
}

/// Parent side of a status barrier: children must agree unanimously.
bool route_status(const std::vector<int>& fds) {
  std::uint8_t first = 0;
  for (std::size_t s = 0; s < fds.size(); ++s) {
    std::uint8_t status = 0;
    read_all(fds[s], &status, 1, "status");
    if (s == 0)
      first = status;
    else if (status != first)
      throw Error("shard transport: shards disagree on continuation");
  }
  for (int fd : fds) write_all(fd, &first, 1, "ack");
  return first == 0;
}

void reap_children(std::vector<pid_t>& pids, bool expect_clean) {
  std::string failure;
  for (pid_t pid : pids) {
    if (pid <= 0) continue;
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (expect_clean &&
        !(WIFEXITED(status) && WEXITSTATUS(status) == 0) && failure.empty())
      failure = "shard transport: shard process exited abnormally (status " +
                std::to_string(status) + ")";
  }
  pids.clear();
  if (!failure.empty()) throw Error(failure);
}

}  // namespace

std::vector<std::string> ForkTransport::run(const RunContext& ctx) {
  const std::int32_t num_shards = ctx.partition->num_shards;
  const auto count = static_cast<std::size_t>(num_shards);
  std::vector<int> fds;          // parent ends
  std::vector<pid_t> pids;
  fds.reserve(count);
  pids.reserve(count);

  const auto close_fds = [&] {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
    fds.clear();
  };

  try {
    for (std::int32_t s = 0; s < num_shards; ++s) {
      int pair[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0)
        throw Error(std::string("shard transport: socketpair failed: ") +
                    std::strerror(errno));
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(pair[0]);
        ::close(pair[1]);
        throw Error(std::string("shard transport: fork failed: ") +
                    std::strerror(errno));
      }
      if (pid == 0) {
        // Child: keep only its own socket.  The worker pool's threads
        // did not survive the fork; the worker never uses them.
        for (int fd : fds) ::close(fd);
        ::close(pair[0]);
        try {
          child_loop(pair[1], ctx, s);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "shard %d: %s\n", s, e.what());
          ::_exit(1);
        } catch (...) {
          ::_exit(1);
        }
        ::_exit(0);
      }
      ::close(pair[1]);
      fds.push_back(pair[0]);
      pids.push_back(pid);
    }

    route_round(fds, "init");
    bool running = route_status(fds);
    while (running) {
      route_round(fds, "plan");
      route_round(fds, "apply");
      running = route_status(fds);
    }
    std::vector<std::string> fragments(count);
    for (std::size_t s = 0; s < count; ++s) {
      auto [shard, bytes] = read_frame(fds[s], "fragment");
      if (shard != s)
        throw Error("shard transport: fragment from the wrong shard");
      fragments[s] = std::move(bytes);
    }
    close_fds();
    reap_children(pids, /*expect_clean=*/true);
    return fragments;
  } catch (...) {
    // Closing the sockets unblocks any child mid-read; reap without
    // masking the original error.
    close_fds();
    try {
      reap_children(pids, /*expect_clean=*/false);
    } catch (...) {
    }
    throw;
  }
}

}  // namespace ocd::shard
