#include "ocd/shard/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "ocd/faults/model.hpp"
#include "ocd/util/parallel.hpp"

namespace ocd::shard {

namespace {

/// Everything the driver must remember about one executed step to
/// rebuild a dead worker: the message rows each shard received in the
/// plan and apply rounds, plus (in-process with faults) each shard's
/// recorded loss trace.  Entries live from execution until the next
/// checkpoint trims them, so the log is bounded by the checkpoint
/// interval.
struct StepMailLog {
  std::vector<std::vector<std::string>> wave_in;   ///< [shard][peer], coordinated
  std::vector<std::vector<std::string>> plan_in;   ///< [shard][peer]
  std::vector<std::vector<std::string>> apply_in;  ///< [shard][peer]
  std::vector<std::string> losses;                 ///< [shard], in-process
};

constexpr std::int64_t kReplayAll = std::numeric_limits<std::int64_t>::max();

}  // namespace

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

TransportResult InProcessTransport::run(const RunContext& ctx) {
  const std::int32_t num_shards = ctx.partition->num_shards;
  const auto count = static_cast<std::size_t>(num_shards);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(count);
  for (std::int32_t s = 0; s < num_shards; ++s)
    workers.push_back(std::make_unique<ShardWorker>(ctx, s));

  // Two mailbox grids per round trip: workers write their outbox row in
  // parallel, the driver transposes at the barrier, then workers read
  // their inbox — a phase never reads a grid a peer is still writing.
  std::vector<std::vector<std::string>> outbox(count), inbox(count);
  for (auto& row : inbox) row.assign(count, {});
  const auto transpose = [&] {
    for (std::size_t src = 0; src < count; ++src)
      for (std::size_t dst = 0; dst < count; ++dst)
        if (src != dst) inbox[dst][src] = std::move(outbox[src][dst]);
  };
  const auto each = [&](auto&& fn) {
    util::parallel_for(count, 1, [&](util::ChunkRange chunk) {
      for (std::size_t s = chunk.begin; s < chunk.end; ++s) fn(s);
    });
  };

  // Recovery bookkeeping — all of it on the driver thread, strictly
  // between the parallel phases, so the suite is TSan-clean.
  TransportResult result;
  RecoveryStats& rec = result.recovery;
  const bool recovery = ctx.recovery_armed;
  const bool faulted = ctx.sim.faults != nullptr;
  const bool coordinated = ctx.coordinated && count > 1;
  std::vector<std::int32_t> incarnation(count, 0);
  std::vector<std::vector<std::string>> init_in;
  std::map<std::int64_t, StepMailLog> log;
  std::vector<std::string> checkpoints(count);
  std::int64_t ckpt_step = -1;

  // Rebuild shard `s` as if it died immediately before `phase` of the
  // in-flight step: fresh worker, restore the latest checkpoint (or
  // re-absorb the logged init round), replay every committed step from
  // the delivery log, then silently re-run the in-flight step's earlier
  // phases — their outputs were already delivered, so they are
  // discarded, and recorded loss traces stand in for the shared fault
  // model, whose chain is already at the live step.
  const auto recover = [&](std::size_t s, CrashPhase phase,
                           std::int64_t step) {
    if (incarnation[s] >= ctx.max_respawns)
      throw Error("shard recovery: shard " + std::to_string(s) +
                  " exhausted max_respawns (" +
                  std::to_string(ctx.max_respawns) + ") at step " +
                  std::to_string(step) + ", phase " +
                  crash_phase_name(phase));
    ++incarnation[s];
    workers[s] = std::make_unique<ShardWorker>(ctx, static_cast<std::int32_t>(s));
    std::int64_t from = 0;
    if (ckpt_step >= 0) {
      workers[s]->restore_checkpoint(checkpoints[s]);
      from = ckpt_step;
    } else {
      workers[s]->absorb_init(init_in[s]);
    }
    std::vector<std::string> discard;
    for (std::int64_t k = from; k < step; ++k) {
      const StepMailLog& l = log.at(k);
      if (coordinated) {
        workers[s]->phase_wave(discard);
        workers[s]->absorb_wave(l.wave_in[s]);
      }
      workers[s]->phase_plan(discard, faulted ? &l.losses[s] : nullptr);
      workers[s]->phase_apply(l.plan_in[s], discard);
      workers[s]->phase_commit(l.apply_in[s]);
    }
    rec.replayed_steps += step - from;
    if (coordinated ? phase != CrashPhase::kWave
                    : phase != CrashPhase::kPlan) {
      const StepMailLog& l = log.at(step);
      if (coordinated) {
        workers[s]->phase_wave(discard);
        workers[s]->absorb_wave(l.wave_in[s]);
      }
      if (phase != CrashPhase::kPlan) {
        workers[s]->phase_plan(discard, faulted ? &l.losses[s] : nullptr);
        if (phase == CrashPhase::kCommit)
          workers[s]->phase_apply(l.plan_in[s], discard);
      }
    }
    ++rec.recoveries;
  };

  // Scripted injection at the barrier the phase is about to cross.  A
  // hang is handled as a crash: inside one address space there is no
  // deadline to expire, so detection is immediate by definition.  The
  // loop re-queries after each respawn so crash_always() points burn
  // the respawn budget exactly as they do under the forked transport.
  const auto inject = [&](CrashPhase phase, std::int64_t step) {
    if (ctx.crash_plan == nullptr) return;
    for (std::size_t s = 0; s < count; ++s) {
      while (ctx.crash_plan->action(static_cast<std::int32_t>(s), step, phase,
                                    incarnation[s]) != CrashAction::kNone) {
        ++rec.worker_crashes;
        recover(s, phase, step);
      }
    }
  };

  each([&](std::size_t s) { workers[s]->phase_init(outbox[s]); });
  transpose();
  if (recovery) init_in = inbox;
  each([&](std::size_t s) { workers[s]->absorb_init(inbox[s]); });

  const bool driver_faults = !ctx.worker_advances_faults && faulted;
  while (workers[0]->running()) {
    const std::int64_t step = workers[0]->step();
    if (driver_faults)
      ctx.sim.faults->begin_step(step, ctx.instance->graph());
    StepMailLog* l = recovery ? &log[step] : nullptr;
    if (coordinated) {
      inject(CrashPhase::kWave, step);
      each([&](std::size_t s) { workers[s]->phase_wave(outbox[s]); });
      transpose();
      if (recovery) l->wave_in = inbox;
      each([&](std::size_t s) { workers[s]->absorb_wave(inbox[s]); });
    }
    inject(CrashPhase::kPlan, step);
    each([&](std::size_t s) { workers[s]->phase_plan(outbox[s]); });
    if (recovery && faulted) {
      l->losses.resize(count);
      for (std::size_t s = 0; s < count; ++s)
        l->losses[s] = workers[s]->loss_record();
    }
    transpose();
    if (recovery) l->plan_in = inbox;
    inject(CrashPhase::kApply, step);
    each([&](std::size_t s) { workers[s]->phase_apply(inbox[s], outbox[s]); });
    transpose();
    if (recovery) l->apply_in = inbox;
    inject(CrashPhase::kCommit, step);
    each([&](std::size_t s) { workers[s]->phase_commit(inbox[s]); });
    for (std::size_t s = 1; s < count; ++s)
      OCD_ASSERT_MSG(workers[s]->running() == workers[0]->running(),
                     "shards disagree on continuation");
    if (recovery && ctx.checkpoint_interval > 0 && workers[0]->running() &&
        workers[0]->step() % ctx.checkpoint_interval == 0) {
      for (std::size_t s = 0; s < count; ++s) {
        checkpoints[s] = workers[s]->save_checkpoint();
        rec.checkpoint_bytes +=
            static_cast<std::int64_t>(checkpoints[s].size());
      }
      ckpt_step = workers[0]->step();
      log.erase(log.begin(), log.lower_bound(ckpt_step));
    }
  }

  result.fragments.resize(count);
  for (std::size_t s = 0; s < count; ++s)
    result.fragments[s] = workers[s]->finish_fragment();
  return result;
}

// ---------------------------------------------------------------------
// Forked one-host transport
// ---------------------------------------------------------------------

namespace {

std::int64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         ts.tv_nsec / 1'000'000;
}

/// Blocks until `fd` is ready for `events` or the deadline passes.
/// EINTR-safe; an expired deadline is the hang signal, reported as a
/// field-named error so a wedged peer can never stall the run.
void wait_ready(int fd, short events, std::int64_t deadline,
                const char* what) {
  for (;;) {
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0)
      throw Error(std::string("shard transport: deadline expired (") + what +
                  ") — a shard process is hung");
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int ready = ::poll(
        &p, 1,
        static_cast<int>(std::min<std::int64_t>(remaining, 1'000'000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("shard transport: poll failed (") + what +
                  "): " + std::strerror(errno));
    }
    if (ready > 0) return;  // readable/writable/HUP; the I/O op decides
  }
}

/// Deadline-bounded full read on a non-blocking socket; throws on EOF
/// or error (a dead child) and on an expired deadline (a hung one).
void read_all(int fd, void* buffer, std::size_t n, const char* what,
              std::int64_t timeout_ms) {
  auto* out = static_cast<char*>(buffer);
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (n > 0) {
    const ssize_t got = ::read(fd, out, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd, POLLIN, deadline, what);
        continue;
      }
      throw Error(std::string("shard transport: read failed (") + what +
                  "): " + std::strerror(errno));
    }
    if (got == 0)
      throw Error(std::string("shard transport: unexpected EOF (") + what +
                  ") — a shard process died");
    out += got;
    n -= static_cast<std::size_t>(got);
  }
}

/// Deadline-bounded full write.  MSG_NOSIGNAL turns a closed peer into
/// EPIPE instead of SIGPIPE (the parent additionally ignores SIGPIPE
/// for the duration of the run, so no disposition race can kill it).
void write_all(int fd, const void* buffer, std::size_t n, const char* what,
               std::int64_t timeout_ms) {
  const auto* in = static_cast<const char*>(buffer);
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (n > 0) {
    const ssize_t put = ::send(fd, in, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd, POLLOUT, deadline, what);
        continue;
      }
      if (errno == EPIPE)
        throw Error(std::string("shard transport: broken pipe (") + what +
                    ") — a shard process died");
      throw Error(std::string("shard transport: write failed (") + what +
                  "): " + std::strerror(errno));
    }
    in += put;
    n -= static_cast<std::size_t>(put);
  }
}

constexpr std::uint32_t kMaxFrame = 1u << 30;  // 1 GiB sanity bound

/// Frame: [u32 peer][u32 len][len bytes].  `peer` is the destination
/// shard child->parent and the source shard parent->child.
void write_frame(int fd, std::uint32_t peer, const std::string& bytes,
                 const char* what, std::int64_t timeout_ms) {
  const auto len = static_cast<std::uint32_t>(bytes.size());
  write_all(fd, &peer, sizeof(peer), what, timeout_ms);
  write_all(fd, &len, sizeof(len), what, timeout_ms);
  if (len > 0) write_all(fd, bytes.data(), len, what, timeout_ms);
}

std::pair<std::uint32_t, std::string> read_frame(int fd, const char* what,
                                                 std::int64_t timeout_ms) {
  std::uint32_t peer = 0;
  std::uint32_t len = 0;
  read_all(fd, &peer, sizeof(peer), what, timeout_ms);
  read_all(fd, &len, sizeof(len), what, timeout_ms);
  if (len > kMaxFrame)
    throw Error(std::string("shard transport: oversized frame (") + what +
                ")");
  std::string bytes(len, '\0');
  if (len > 0) read_all(fd, bytes.data(), len, what, timeout_ms);
  return {peer, std::move(bytes)};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw Error(std::string("shard transport: fcntl failed: ") +
                std::strerror(errno));
}

/// Scoped SIGPIPE suppression for the supervisor: a child that dies
/// while the parent is mid-write must surface as EPIPE, never as a
/// process-killing signal.  The previous disposition is restored on
/// exit so the library does not leak policy into its host.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &old_);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &old_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction old_ = {};
};

/// Child side: send this shard's round messages, then receive the
/// peers' messages.  Children always write their full round before
/// reading, and the parent always reads every child before writing, so
/// the star cannot deadlock regardless of socket buffer sizes.
void child_round(int fd, std::int32_t self, std::vector<std::string>& out,
                 std::vector<std::string>& in, const char* what,
                 std::int64_t timeout_ms) {
  const auto count = out.size();
  for (std::size_t dst = 0; dst < count; ++dst) {
    if (dst == static_cast<std::size_t>(self)) continue;
    write_frame(fd, static_cast<std::uint32_t>(dst), out[dst], what,
                timeout_ms);
  }
  in.assign(count, {});
  for (std::size_t i = 0; i + 1 < count; ++i) {
    auto [src, bytes] = read_frame(fd, what, timeout_ms);
    if (src >= count || src == static_cast<std::uint32_t>(self) ||
        !in[src].empty())
      throw Error(std::string("shard transport: bad source shard (") + what +
                  ")");
    in[src] = std::move(bytes);
  }
}

/// Where a respawned child rejoins the protocol.  The parent picks the
/// point from the sub-stage whose I/O failed; the child re-executes
/// exactly the live work whose output was never delivered, and re-runs
/// everything earlier silently (outputs discarded — the peers already
/// consumed the previous incarnation's identical bytes).
enum class Resume : std::uint8_t {
  kFresh,            ///< initial spawn, full protocol from phase_init
  kInitRound,        ///< redo the init round's I/O
  kInitCommit,       ///< absorb the logged init mail, handshake, loop
  kWaveRound,        ///< replay, then loop from phase_wave (coordinated)
  kPlanRound,        ///< replay (+ silent wave), loop from phase_plan
  kApplyRound,       ///< replay; silent wave+plan; live from phase_apply
  kCommitRound,      ///< replay; silent wave+plan+apply; live from commit
  kCheckpointFrame,  ///< replay everything, rewrite the checkpoint frame
  kFragment,         ///< replay everything, write the fragment
};

struct Supervisor;

struct ChildTask {
  const RunContext* ctx = nullptr;
  const Supervisor* sup = nullptr;  ///< parent state, copy-on-write
  std::int32_t shard = 0;
  std::int32_t incarnation = 0;
  Resume resume = Resume::kFresh;
};

void child_main(int fd, const ChildTask& task);

/// The parent's half of the crash-tolerant barrier protocol.  All
/// per-child I/O goes through attempt(), which on failure either
/// respawns the child from the logged state and retries (recovery
/// armed) or rethrows the field-named error (recovery off — the
/// satellite guarantee that a wedged peer can never hang ctest).
struct Supervisor {
  explicit Supervisor(const RunContext& context)
      : ctx(context),
        count(static_cast<std::size_t>(context.partition->num_shards)),
        timeout(context.barrier_timeout_ms),
        coordinated(context.coordinated && count > 1),
        fds(count, -1),
        pids(count, -1),
        incarnation(count, 0),
        checkpoints(count),
        mail(count) {}

  const RunContext& ctx;
  std::size_t count;
  std::int64_t timeout;
  bool coordinated;
  std::vector<int> fds;
  std::vector<pid_t> pids;
  std::vector<std::int32_t> incarnation;

  // Committed state for respawns (children read it copy-on-write).
  std::vector<std::vector<std::string>> init_in;  ///< [shard][src]
  std::map<std::int64_t, StepMailLog> log;
  std::vector<std::string> checkpoints;
  std::int64_t ckpt_step = -1;
  /// Continue-barriers passed == the step index of the in-flight round.
  std::int64_t committed = 0;
  bool in_init = true;

  RecoveryStats rec;
  std::vector<std::vector<std::string>> mail;  ///< [src][dst] round scratch
  std::uint8_t barrier_status = 0;

  enum class Stage : std::uint8_t {
    kFrames,      ///< reading a child's round frames
    kMail,        ///< writing a child its round mail
    kStatus,      ///< reading a child's status byte
    kAck,         ///< writing a child the ack byte
    kCheckpoint,  ///< reading a child's checkpoint frame
    kFragment,    ///< reading a child's finish fragment
  };

  /// Which message round a kFrames/kMail stage belongs to; the other
  /// stages ignore it (pass Round::kApply by convention).
  enum class Round : std::uint8_t { kWave, kPlan, kApply };

  void spawn(std::size_t s, Resume resume) {
    int pair[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0)
      throw Error(std::string("shard transport: socketpair failed: ") +
                  std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pair[0]);
      ::close(pair[1]);
      throw Error(std::string("shard transport: fork failed: ") +
                  std::strerror(errno));
    }
    if (pid == 0) {
      // Child: keep only its own socket.  The worker pool's threads did
      // not survive the fork; the worker never uses them.
      for (int fd : fds)
        if (fd >= 0) ::close(fd);
      ::close(pair[0]);
      ChildTask task;
      task.ctx = &ctx;
      task.sup = this;
      task.shard = static_cast<std::int32_t>(s);
      task.incarnation = incarnation[s];
      task.resume = resume;
      try {
        set_nonblocking(pair[1]);
        child_main(pair[1], task);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "shard %zu: %s\n", s, e.what());
        ::_exit(1);
      } catch (...) {
        ::_exit(1);
      }
      ::_exit(0);
    }
    ::close(pair[1]);
    set_nonblocking(pair[0]);
    fds[s] = pair[0];
    pids[s] = pid;
  }

  void terminate(std::size_t s) {
    if (pids[s] > 0) {
      ::kill(pids[s], SIGKILL);
      int status = 0;
      while (::waitpid(pids[s], &status, 0) < 0 && errno == EINTR) {
      }
      pids[s] = -1;
    }
    if (fds[s] >= 0) {
      ::close(fds[s]);
      fds[s] = -1;
    }
  }

  [[nodiscard]] const char* phase_label(Stage stage) const {
    if (in_init) return "init";
    switch (stage) {
      case Stage::kFrames:
      case Stage::kMail:
        return mail_round_label;
      case Stage::kStatus:
      case Stage::kAck:
        return "commit";
      case Stage::kCheckpoint:
        return "checkpoint";
      case Stage::kFragment:
        return "fragment";
    }
    return "?";
  }

  const char* mail_round_label = "plan";  ///< set by step_round()

  [[nodiscard]] Resume resume_point(Stage stage, Round round) const {
    if (in_init)
      return stage == Stage::kFrames ? Resume::kInitRound
                                     : Resume::kInitCommit;
    switch (stage) {
      case Stage::kFrames:
        return round == Round::kWave    ? Resume::kWaveRound
               : round == Round::kPlan  ? Resume::kPlanRound
                                        : Resume::kApplyRound;
      case Stage::kMail:
        // The failed mail row is re-read from the log (route_round files
        // it before any write), so the child rejoins at the next round.
        return round == Round::kWave    ? Resume::kPlanRound
               : round == Round::kPlan  ? Resume::kApplyRound
                                        : Resume::kCommitRound;
      case Stage::kStatus:
      case Stage::kAck:
        return Resume::kCommitRound;
      case Stage::kCheckpoint:
        return Resume::kCheckpointFrame;
      case Stage::kFragment:
        return Resume::kFragment;
    }
    return Resume::kFragment;
  }

  /// Kills, respawns, and fast-forwards shard `s` after an I/O failure
  /// at `stage`.  Throws when recovery is off (rethrowing the original
  /// field-named error with context) or the respawn budget is spent.
  void recover(std::size_t s, Stage stage, Round round,
               const Error& cause) {
    ++rec.worker_crashes;
    terminate(s);
    if (!ctx.recovery_armed)
      throw Error("shard transport: shard " + std::to_string(s) +
                  " failed at step " + std::to_string(committed) + " (" +
                  phase_label(stage) + "), recovery is off: " + cause.what());
    if (incarnation[s] >= ctx.max_respawns)
      throw Error("shard recovery: shard " + std::to_string(s) +
                  " exhausted max_respawns (" +
                  std::to_string(ctx.max_respawns) + ") at step " +
                  std::to_string(committed) + ", phase " +
                  phase_label(stage));
    ++incarnation[s];
    const Resume resume = resume_point(stage, round);
    // Respawn-time replay accounting: the child will re-execute every
    // logged step below the live one (all of them for the post-loop
    // resume points).
    const std::int64_t from = ckpt_step >= 0 ? ckpt_step : 0;
    const std::int64_t upto = (resume == Resume::kCheckpointFrame ||
                               resume == Resume::kFragment)
                                  ? kReplayAll
                                  : committed;
    if (resume != Resume::kInitRound && resume != Resume::kInitCommit)
      for (const auto& [k, entry] : log)
        if (k >= from && k < upto) ++rec.replayed_steps;
    spawn(s, resume);
    ++rec.recoveries;
    if (stage == Stage::kAck) {
      // The respawned child re-runs the commit and handshakes; drain
      // its (identical) status byte so the retried ack write aligns.
      std::uint8_t status = 0;
      read_all(fds[s], &status, 1, "status", timeout);
      if (status != barrier_status)
        throw Error("shard transport: shards disagree on continuation");
    }
  }

  /// Runs `op` against shard `s`, recovering and retrying on failure.
  /// `op` must be restartable from scratch (reads clear their partial
  /// state first).  Returns false when the op became moot because the
  /// respawned child takes its input from the log instead (mail
  /// writes).
  template <typename Op>
  bool attempt(std::size_t s, Stage stage, Round round, Op&& op) {
    for (;;) {
      try {
        op();
        return true;
      } catch (const Error& e) {
        recover(s, stage, round, e);
        if (stage == Stage::kMail) return false;  // child reads the log
      }
    }
  }

  /// Reads shard `s`'s full set of round frames into mail[s].
  void read_frames(std::size_t s, const char* what) {
    mail[s].assign(count, {});
    for (std::size_t i = 0; i + 1 < count; ++i) {
      auto [dst, bytes] = read_frame(fds[s], what, timeout);
      if (dst >= count || dst == s || !mail[s][dst].empty())
        throw Error(std::string("shard transport: bad destination shard (") +
                    what + ")");
      mail[s][dst] = std::move(bytes);
    }
  }

  /// mail (indexed [src][dst]) transposed into per-recipient rows.
  [[nodiscard]] std::vector<std::vector<std::string>> recipient_rows()
      const {
    std::vector<std::vector<std::string>> rows(
        count, std::vector<std::string>(count));
    for (std::size_t src = 0; src < count; ++src)
      for (std::size_t dst = 0; dst < count; ++dst)
        if (src != dst) rows[dst][src] = mail[src][dst];
    return rows;
  }

  /// One full message round: drain every child's frames, transpose,
  /// deliver.  The per-recipient rows are filed into `log_rows` BEFORE
  /// any mail write, so a child that dies mid-delivery can always
  /// re-read its row from the log (a kMail resume point depends on it).
  void route_round(const char* what, Round round,
                   std::vector<std::vector<std::string>>* log_rows) {
    mail_round_label = what;
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kFrames, round, [&] { read_frames(s, what); });
    std::vector<std::vector<std::string>> local;
    std::vector<std::vector<std::string>>& rows =
        log_rows != nullptr ? *log_rows : local;
    rows = recipient_rows();
    for (std::size_t dst = 0; dst < count; ++dst)
      attempt(dst, Stage::kMail, round, [&] {
        for (std::size_t src = 0; src < count; ++src)
          if (src != dst)
            write_frame(fds[dst], static_cast<std::uint32_t>(src),
                        rows[dst][src], what, timeout);
      });
  }

  /// Status barrier: children must agree unanimously; the ack echo
  /// releases them.  Returns true when another step follows.
  bool status_barrier() {
    bool have = false;
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kStatus, Round::kApply, [&] {
        std::uint8_t status = 0;
        read_all(fds[s], &status, 1, "status", timeout);
        if (!have) {
          barrier_status = status;
          have = true;
        } else if (status != barrier_status) {
          throw Error("shard transport: shards disagree on continuation");
        }
      });
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kAck, Round::kApply, [&] {
        write_all(fds[s], &barrier_status, 1, "ack", timeout);
      });
    return barrier_status == 0;
  }

  void run_init_round() {
    mail_round_label = "init";
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kFrames, Round::kPlan,
              [&] { read_frames(s, "init"); });
    init_in = recipient_rows();
    for (std::size_t dst = 0; dst < count; ++dst)
      attempt(dst, Stage::kMail, Round::kPlan, [&] {
        for (std::size_t src = 0; src < count; ++src)
          if (src != dst)
            write_frame(fds[dst], static_cast<std::uint32_t>(src),
                        init_in[dst][src], "init", timeout);
      });
  }

  void run_step_round() {
    StepMailLog* entry = ctx.recovery_armed ? &log[committed] : nullptr;
    if (coordinated)
      route_round("wave", Round::kWave,
                  entry != nullptr ? &entry->wave_in : nullptr);
    route_round("plan", Round::kPlan,
                entry != nullptr ? &entry->plan_in : nullptr);
    route_round("apply", Round::kApply,
                entry != nullptr ? &entry->apply_in : nullptr);
  }

  void maybe_collect_checkpoints() {
    if (ctx.checkpoint_interval <= 0 ||
        committed % ctx.checkpoint_interval != 0)
      return;
    std::vector<std::string> fresh(count);
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kCheckpoint, Round::kApply, [&] {
        auto [shard, bytes] = read_frame(fds[s], "checkpoint", timeout);
        if (shard != s)
          throw Error("shard transport: checkpoint from the wrong shard");
        fresh[s] = std::move(bytes);
      });
    for (const std::string& blob : fresh)
      rec.checkpoint_bytes += static_cast<std::int64_t>(blob.size());
    checkpoints = std::move(fresh);
    ckpt_step = committed;
    log.erase(log.begin(), log.lower_bound(ckpt_step));
  }

  std::vector<std::string> collect_fragments() {
    std::vector<std::string> fragments(count);
    for (std::size_t s = 0; s < count; ++s)
      attempt(s, Stage::kFragment, Round::kApply, [&] {
        auto [shard, bytes] = read_frame(fds[s], "fragment", timeout);
        if (shard != s)
          throw Error("shard transport: fragment from the wrong shard");
        fragments[s] = std::move(bytes);
      });
    return fragments;
  }

  void shutdown(bool expect_clean) {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    std::string failure;
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      if (expect_clean &&
          !(WIFEXITED(status) && WEXITSTATUS(status) == 0) &&
          failure.empty())
        failure =
            "shard transport: shard process exited abnormally (status " +
            std::to_string(status) + ")";
      pid = -1;
    }
    if (!failure.empty()) throw Error(failure);
  }
};

/// Child process body.  A fresh child runs the whole protocol; a
/// respawned one rebuilds its worker from the supervisor's logged state
/// (visible copy-on-write), replays silently, re-enters at its Resume
/// point, and from there is indistinguishable from the original.
void child_main(int fd, const ChildTask& task) {
  const RunContext& ctx = *task.ctx;
  const Supervisor& sup = *task.sup;
  const auto count = static_cast<std::size_t>(ctx.partition->num_shards);
  // A child's deadline is only a backstop against a dead supervisor.  A
  // healthy child legitimately waits while the parent spends up to
  // barrier_timeout_ms detecting each of a sibling's failures (times
  // the respawn budget, times the shard count), so the backstop scales
  // past that worst case — otherwise a peer's recovery would cascade
  // into this child's own suicide-by-timeout.
  const std::int64_t timeout =
      ctx.barrier_timeout_ms *
      (static_cast<std::int64_t>(count) * (ctx.max_respawns + 2) + 2);
  const auto shard = static_cast<std::size_t>(task.shard);
  const bool coordinated = ctx.coordinated && count > 1;
  ShardWorker worker(ctx, task.shard);
  std::vector<std::string> out(count), in(count), discard(count);
  // Silent wave for a replayed or already-routed step: the summary was
  // already delivered in a previous incarnation, so the output is
  // discarded and the logged peer frames are merged instead.
  const auto replay_wave = [&](const StepMailLog& entry) {
    worker.phase_wave(discard);
    worker.absorb_wave(entry.wave_in[shard]);
  };

  const auto handshake = [&] {
    const std::uint8_t status = worker.running() ? 0 : 1;
    write_all(fd, &status, 1, "status", timeout);
    std::uint8_t ack = 0;
    read_all(fd, &ack, 1, "ack", timeout);
    if (ack != status)
      throw Error("shard transport: shards disagree on continuation");
  };
  const auto maybe_checkpoint = [&] {
    if (ctx.checkpoint_interval > 0 && worker.running() &&
        worker.step() % ctx.checkpoint_interval == 0)
      write_frame(fd, static_cast<std::uint32_t>(shard),
                  worker.save_checkpoint(), "checkpoint", timeout);
  };
  // Scripted failure injection at the live barriers only — replayed
  // steps already survived their barriers in a previous incarnation.
  const auto inject = [&](CrashPhase phase) {
    if (ctx.crash_plan == nullptr) return;
    switch (ctx.crash_plan->action(task.shard, worker.step(), phase,
                                   task.incarnation)) {
      case CrashAction::kNone:
        return;
      case CrashAction::kCrash:
        ::_exit(9);  // abrupt death: no flush, no farewell frame
      case CrashAction::kHang:
        for (;;) ::pause();  // wedged until the parent's deadline fires
    }
  };

  // Set when a resume point already merged the live step's wave round,
  // so the first loop iteration must not run it again.
  bool wave_done = false;
  if (task.resume == Resume::kFresh || task.resume == Resume::kInitRound) {
    worker.phase_init(out);
    child_round(fd, task.shard, out, in, "init", timeout);
    worker.absorb_init(in);
    handshake();
  } else if (task.resume == Resume::kInitCommit) {
    worker.absorb_init(sup.init_in[shard]);
    handshake();
  } else {
    // Rebuild committed state: checkpoint (or logged init), then silent
    // replay.  The private copy-on-write fault model is fast-forwarded
    // by restore_checkpoint; replayed phase_plans advance it onward.
    std::int64_t from = 0;
    if (sup.ckpt_step >= 0) {
      worker.restore_checkpoint(sup.checkpoints[shard]);
      from = sup.ckpt_step;
    } else {
      worker.absorb_init(sup.init_in[shard]);
    }
    const std::int64_t upto = (task.resume == Resume::kCheckpointFrame ||
                               task.resume == Resume::kFragment)
                                  ? kReplayAll
                                  : sup.committed;
    for (const auto& [k, entry] : sup.log) {
      if (k < from || k >= upto) continue;
      if (coordinated) replay_wave(entry);
      worker.phase_plan(discard);
      worker.phase_apply(entry.plan_in[shard], discard);
      worker.phase_commit(entry.apply_in[shard]);
    }
    switch (task.resume) {
      case Resume::kWaveRound:
        break;  // the loop below starts exactly at phase_wave
      case Resume::kPlanRound:
        // The live step's wave round was already routed; rebuild the
        // merged decision from the log, then loop from phase_plan.
        if (coordinated) {
          replay_wave(sup.log.at(sup.committed));
          wave_done = true;
        }
        break;
      case Resume::kApplyRound: {
        const StepMailLog& live = sup.log.at(sup.committed);
        if (coordinated) replay_wave(live);
        worker.phase_plan(discard);  // frames already delivered
        inject(CrashPhase::kApply);
        worker.phase_apply(live.plan_in[shard], out);
        child_round(fd, task.shard, out, in, "apply", timeout);
        inject(CrashPhase::kCommit);
        worker.phase_commit(in);
        handshake();
        maybe_checkpoint();
        break;
      }
      case Resume::kCommitRound: {
        const StepMailLog& live = sup.log.at(sup.committed);
        if (coordinated) replay_wave(live);
        worker.phase_plan(discard);
        worker.phase_apply(live.plan_in[shard], discard);
        inject(CrashPhase::kCommit);
        worker.phase_commit(live.apply_in[shard]);
        handshake();
        maybe_checkpoint();
        break;
      }
      case Resume::kCheckpointFrame:
        write_frame(fd, static_cast<std::uint32_t>(shard),
                    worker.save_checkpoint(), "checkpoint", timeout);
        break;
      case Resume::kFragment:
        break;  // replay left running() false; fall through to the end
      default:
        break;
    }
  }

  while (worker.running()) {
    if (coordinated && !wave_done) {
      inject(CrashPhase::kWave);
      worker.phase_wave(out);
      child_round(fd, task.shard, out, in, "wave", timeout);
      worker.absorb_wave(in);
    }
    wave_done = false;
    inject(CrashPhase::kPlan);
    worker.phase_plan(out);
    child_round(fd, task.shard, out, in, "plan", timeout);
    inject(CrashPhase::kApply);
    worker.phase_apply(in, out);
    child_round(fd, task.shard, out, in, "apply", timeout);
    inject(CrashPhase::kCommit);
    worker.phase_commit(in);
    handshake();
    maybe_checkpoint();
  }
  write_frame(fd, static_cast<std::uint32_t>(shard),
              worker.finish_fragment(), "fragment", timeout);
}

}  // namespace

TransportResult ForkTransport::run(const RunContext& ctx) {
  SigpipeGuard sigpipe;
  Supervisor sup(ctx);
  try {
    for (std::size_t s = 0; s < sup.count; ++s) sup.spawn(s, Resume::kFresh);
    sup.run_init_round();
    bool running = sup.status_barrier();
    sup.in_init = false;
    while (running) {
      sup.run_step_round();
      running = sup.status_barrier();
      if (running) {
        ++sup.committed;
        sup.maybe_collect_checkpoints();
      }
    }
    TransportResult result;
    result.fragments = sup.collect_fragments();
    result.recovery = sup.rec;
    sup.shutdown(/*expect_clean=*/true);
    return result;
  } catch (...) {
    // Closing the sockets unblocks any child mid-read; reap without
    // masking the original error.
    try {
      sup.shutdown(/*expect_clean=*/false);
    } catch (...) {
    }
    throw;
  }
}

}  // namespace ocd::shard
