#include "ocd/shard/runtime.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "ocd/faults/model.hpp"
#include "ocd/heuristics/coordination.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/shard/transport.hpp"
#include "ocd/util/binstream.hpp"
#include "ocd/util/env.hpp"
#include "ocd/util/stopwatch.hpp"

namespace ocd::shard {

namespace {

constexpr std::int64_t kDefaultNoProgressWindow = 256;  // simulator.cpp

/// Planners the barrier protocol reproduces bit-identically.  Everything
/// else (adapter-wrapped policies) is refused up front.
constexpr std::string_view kSupportedPolicies[] = {
    "round-robin", "random", "local", "global", "bandwidth"};

bool supported_policy(std::string_view name) {
  for (std::string_view p : kSupportedPolicies)
    if (p == name) return true;
  return false;
}

void validate_envelope(std::string_view policy_name,
                       const sim::SimOptions& options) {
  if (options.max_steps < 0)
    throw Error("SimOptions.max_steps must be >= 0, got " +
                std::to_string(options.max_steps));
  if (options.no_progress_window < -1)
    throw Error(
        "SimOptions.no_progress_window must be -1 (off), 0 (auto) or "
        "positive, got " +
        std::to_string(options.no_progress_window));
  if (!supported_policy(policy_name))
    throw Error("sharded runtime supports policies round-robin, random, "
                "local, global and bandwidth; got '" +
                std::string(policy_name) + "'");
  if (options.staleness != 0)
    throw Error(
        "sharded runtime does not support staleness (the snapshot ring is "
        "not replicated across shards)");
  if (options.stale_aggregates)
    throw Error(
        "sharded runtime does not support stale_aggregates (aggregates are "
        "maintained by replicated deltas, not snapshot recomputes)");
  if (options.dynamics != nullptr)
    throw Error(
        "sharded runtime does not support dynamics models (per-step "
        "capacity rewrites are not replicated across shards)");
  if (options.completion)
    throw Error(
        "sharded runtime does not support completion overrides (the "
        "predicate cannot be shipped to shard processes)");
  if (options.precompute_distances)
    throw Error(
        "sharded runtime does not support precompute_distances (no "
        "supported policy may observe them)");
}

}  // namespace

// ---------------------------------------------------------------------
// ShardWorker
// ---------------------------------------------------------------------

ShardWorker::ShardWorker(const RunContext& ctx, std::int32_t shard)
    : ctx_(ctx), shard_(shard) {
  const core::Instance& inst = *ctx.instance;
  const Partition& part = *ctx.partition;
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto m = static_cast<std::size_t>(inst.num_tokens());
  const auto s = static_cast<std::size_t>(shard);
  num_shards_ = part.num_shards;
  faulted_ = ctx.sim.faults != nullptr;
  needs_aggregates_ = static_cast<int>(ctx.knowledge) >=
                      static_cast<int>(sim::KnowledgeClass::kLocalAggregate);

  policy_ = heuristics::make_policy(ctx.policy_name);
  policy_->reset(inst, ctx.sim.seed);

  owned_ = std::span<const VertexId>(part.owned[s]);
  if (ctx.coordinated) {
    // Coordinated planners read global possession: every shard keeps a
    // full replica (one row per vertex, identity row map), kept exact
    // by subscribing every peer to every owned vertex below — the
    // existing ghost-update machinery then broadcasts exactly the
    // per-step possession deltas.
    rows_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      rows_[i] = static_cast<VertexId>(i);
    row_map_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      row_map_[i] = static_cast<std::int32_t>(i);
  } else {
    rows_.resize(part.owned[s].size() + part.ghosts[s].size());
    std::merge(part.owned[s].begin(), part.owned[s].end(),
               part.ghosts[s].begin(), part.ghosts[s].end(), rows_.begin());
    row_map_.assign(n, -1);
    for (std::size_t i = 0; i < rows_.size(); ++i)
      row_map_[static_cast<std::size_t>(rows_[i])] =
          static_cast<std::int32_t>(i);
  }
  owned_index_.assign(n, -1);
  for (std::size_t k = 0; k < owned_.size(); ++k)
    owned_index_[static_cast<std::size_t>(owned_[k])] =
        static_cast<std::int32_t>(k);

  possession_.reset(rows_.size(), m);
  for (std::size_t i = 0; i < rows_.size(); ++i)
    possession_.assign_row(i, inst.have(rows_[i]));
  uni_.reset(owned_.size(), m);

  // Every shard derives the full initial aggregates directly from the
  // instance (possession starts equal to have everywhere), so the
  // replicas agree from step 0 without any exchange.
  if (needs_aggregates_) {
    aggregates_.holders.assign(m, 0);
    aggregates_.need.assign(m, 0);
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      const TokenSetView have = inst.have(v);
      have.for_each([&](TokenId t) {
        ++aggregates_.holders[static_cast<std::size_t>(t)];
      });
      const TokenSetView want = inst.want(v);
      for (std::size_t wi = 0, e = want.num_words(); wi < e; ++wi) {
        std::uint64_t w = want.word(wi) & ~have.word(wi);
        while (w != 0) {
          const auto t = static_cast<std::size_t>(wi) * 64 +
                         static_cast<std::size_t>(std::countr_zero(w));
          ++aggregates_.need[t];
          w &= w - 1;
        }
      }
    }
    dh_.assign(m, 0);
    dn_.assign(m, 0);
  }

  satisfied_.assign(owned_.size(), 0);
  completion_.assign(owned_.size(), -1);
  for (std::size_t k = 0; k < owned_.size(); ++k) {
    const VertexId v = owned_[k];
    const auto row = static_cast<std::size_t>(
        row_map_[static_cast<std::size_t>(v)]);
    if (inst.want(v).is_subset_of(possession_.row(row))) {
      satisfied_[k] = 1;
      completion_[k] = 0;
    } else {
      ++local_unsatisfied_;
    }
  }

  sent_by_.assign(n, 0);
  arc_load_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), 0);
  touched_flag_.assign(owned_.size(), 0);
  touched_.reserve(owned_.size());
  fresh_ = TokenSet(m);
  lost_ = TokenSet(m);
  msg_tokens_ = TokenSet(m);

  out_ghost_.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    if (ctx.coordinated) {
      out_ghost_[static_cast<std::size_t>(p)].assign(owned_.begin(),
                                                     owned_.end());
    } else {
      for (VertexId v : part.ghosts[static_cast<std::size_t>(p)])
        if (part.shard_of[static_cast<std::size_t>(v)] == shard_)
          out_ghost_[static_cast<std::size_t>(p)].push_back(v);
    }
  }
  deliv_for_.assign(static_cast<std::size_t>(num_shards_), {});

  if (ctx.coordinated && num_shards_ > 1) {
    coord_ = dynamic_cast<heuristics::ShardCoordinator*>(policy_.get());
    OCD_ASSERT_MSG(coord_ != nullptr,
                   "coordinated policy does not implement ShardCoordinator");
    heuristics::CoordinationSetup setup;
    setup.instance = &inst;
    setup.shard_of = std::span<const std::int32_t>(part.shard_of);
    setup.shard = shard_;
    setup.num_shards = num_shards_;
    setup.wave_topk = ctx.wave_topk;
    coord_->begin_coordination(setup);
    ordinal_schedule_ =
        ctx.sim.record_schedule && ctx.policy_name == "global";
  }
}

void ShardWorker::phase_init(std::vector<std::string>& out) {
  out.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    util::BinStream msg;
    msg.put_varint(static_cast<std::uint64_t>(local_unsatisfied_));
    out[static_cast<std::size_t>(p)] = std::move(msg).take();
    bytes_sent_ +=
        static_cast<std::int64_t>(out[static_cast<std::size_t>(p)].size());
  }
}

void ShardWorker::absorb_init(const std::vector<std::string>& in) {
  unsatisfied_ = local_unsatisfied_;
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    bytes_received_ +=
        static_cast<std::int64_t>(in[static_cast<std::size_t>(p)].size());
    util::BinStream msg(in[static_cast<std::size_t>(p)]);
    unsatisfied_ +=
        static_cast<std::int64_t>(msg.get_varint("init.unsatisfied"));
    msg.require(msg.exhausted(), "init", "trailing bytes");
  }
  running_ = step_ < ctx_.sim.max_steps && unsatisfied_ > 0;
}

void ShardWorker::phase_wave(std::vector<std::string>& out) {
  OCD_ASSERT(running_);
  OCD_ASSERT(coord_ != nullptr);
  const std::span<const std::int32_t> capacity(ctx_.static_capacity);
  sim::StepView view(*ctx_.instance, possession_, possession_, &aggregates_,
                     nullptr, ctx_.knowledge, step_, capacity);
  summary_entries_ += coord_->coord_prescore(view, wave_frame_);
  out.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    out[static_cast<std::size_t>(p)] = wave_frame_;
    bytes_sent_ += static_cast<std::int64_t>(wave_frame_.size());
  }
}

void ShardWorker::absorb_wave(const std::vector<std::string>& in) {
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    bytes_received_ +=
        static_cast<std::int64_t>(in[static_cast<std::size_t>(p)].size());
  }
  const std::span<const std::int32_t> capacity(ctx_.static_capacity);
  sim::StepView view(*ctx_.instance, possession_, possession_, &aggregates_,
                     nullptr, ctx_.knowledge, step_, capacity);
  if (coord_->coord_absorb(view, in)) ++wave_fallbacks_;
}

// Local reimplementation of sim::validate_sends: identical checks and
// error text, but possession rows are addressed through the row map
// (the sender of a "local"-policy send may be a ghost of this shard).
void ShardWorker::validate_shard_sends(std::span<const core::ArcSend> sends) {
  const Digraph& graph = ctx_.instance->graph();
  const auto fail = [&](const Arc& arc, const char* what) {
    for (const core::ArcSend& send : sends)
      arc_load_[static_cast<std::size_t>(send.arc)] = 0;
    std::ostringstream msg;
    msg << "policy '" << policy_->name() << "' " << what << " on arc ("
        << arc.from << "," << arc.to << ") at step " << step_;
    throw Error(msg.str());
  };
  for (const core::ArcSend& send : sends) {
    const Arc& arc = graph.arc(send.arc);
    const auto index = static_cast<std::size_t>(send.arc);
    arc_load_[index] += static_cast<std::int32_t>(send.tokens.count());
    if (arc_load_[index] > ctx_.static_capacity[index])
      fail(arc, "exceeded capacity");
    const auto from_row = row_map_[static_cast<std::size_t>(arc.from)];
    OCD_ASSERT(from_row >= 0);
    if (!send.tokens.is_subset_of(
            possession_.row(static_cast<std::size_t>(from_row))))
      fail(arc, "sent unpossessed tokens");
  }
  for (const core::ArcSend& send : sends)
    arc_load_[static_cast<std::size_t>(send.arc)] = 0;
}

void ShardWorker::phase_plan(std::vector<std::string>& out,
                             const std::string* replay_losses) {
  OCD_ASSERT(running_);
  const core::Instance& inst = *ctx_.instance;
  // Channel state advances every step, traffic or not (the in-process
  // driver advances the shared model instead; see RunContext).  A
  // replaying in-process worker reads its recorded loss trace and never
  // touches the shared model, whose chain is already at the live step.
  if (ctx_.worker_advances_faults && faulted_)
    ctx_.sim.faults->begin_step(step_, inst.graph());
  const bool log_losses =
      ctx_.log_losses && faulted_ && replay_losses == nullptr;
  util::BinStream record;
  util::BinStream replay(replay_losses == nullptr ? std::string()
                                                  : *replay_losses);

  const std::span<const std::int32_t> capacity(ctx_.static_capacity);
  plan_.rebind(inst.graph(), capacity);
  sim::StepView view(inst, possession_, possession_,
                     needs_aggregates_ ? &aggregates_ : nullptr, nullptr,
                     ctx_.knowledge, step_, capacity);
  if (!ctx_.coordinated) {
    // Local planners: shard-local rows behind the row map, independent
    // per-vertex planning.
    view.set_row_map(row_map_);
    policy_->plan_shard(view, plan_, owned_);
  } else if (coord_ != nullptr) {
    // Coordinated, > 1 shard: the wave round already replicated the
    // merged decision; emit the owned share (possession is fully
    // replicated, so the view needs no row map).
    ordinals_.clear();
    coord_->coord_emit(view, plan_, ordinals_);
  } else {
    // Coordinated, single shard: no wave round ran (and none is needed —
    // the serial planner sees the whole instance), so this worker IS the
    // single-process planner.
    policy_->plan_step(view, plan_);
  }
  validate_shard_sends(plan_.sends());

  // Wire counters and channel loss, then route surviving deliveries to
  // the destination vertex's owning shard.  Loss decisions are derived
  // per (step, arc), so querying only this shard's sends — in any
  // order — reproduces the single-process loss trace exactly.
  step_moves_ = 0;
  step_lost_ = 0;
  local_deliv_.clear();
  for (auto& routed : deliv_for_) routed.clear();
  const std::span<core::ArcSend> sends = plan_.sends();
  if (replay_losses != nullptr && faulted_)
    replay.require(replay.get_varint("loss_record.sends") == sends.size(),
                   "loss_record.sends",
                   "send count does not match the replayed plan");
  if (log_losses) record.put_varint(sends.size());
  for (std::size_t i = 0; i < sends.size(); ++i) {
    core::ArcSend& send = sends[i];
    const Arc& arc = inst.graph().arc(send.arc);
    const auto count = static_cast<std::int64_t>(send.tokens.count());
    step_moves_ += count;
    sent_by_[static_cast<std::size_t>(arc.from)] += count;
    if (faulted_) {
      if (replay_losses != nullptr) {
        util::get_token_set_into(replay, "loss_record.lost", lost_);
      } else {
        lost_.clear();
        ctx_.sim.faults->lost(step_, send.arc, send.tokens, lost_);
      }
      lost_ &= send.tokens;  // a model may only lose what was sent
      if (log_losses) util::put_token_set(record, lost_);
      const auto lost_count = static_cast<std::int64_t>(lost_.count());
      if (lost_count > 0) {
        step_lost_ += lost_count;
        send.tokens -= lost_;
      }
    }
    if (send.tokens.empty()) continue;
    const std::int32_t owner =
        ctx_.partition->shard_of[static_cast<std::size_t>(arc.to)];
    if (owner == shard_)
      local_deliv_.push_back(static_cast<std::uint32_t>(i));
    else
      deliv_for_[static_cast<std::size_t>(owner)].push_back(
          static_cast<std::uint32_t>(i));
  }
  if (replay_losses != nullptr && faulted_)
    replay.require(replay.exhausted(), "loss_record", "trailing bytes");
  if (log_losses) loss_record_ = std::move(record).take();

  out.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    util::BinStream msg;
    msg.put_bool(plan_.empty());
    msg.put_bool(plan_.idle_marked());
    msg.put_varint(static_cast<std::uint64_t>(step_moves_));
    msg.put_varint(static_cast<std::uint64_t>(step_lost_));
    const auto& routed = deliv_for_[static_cast<std::size_t>(p)];
    msg.put_varint(routed.size());
    for (std::uint32_t i : routed) {
      msg.put_varint(static_cast<std::uint64_t>(sends[i].arc));
      util::put_token_set(msg, sends[i].tokens);
    }
    out[static_cast<std::size_t>(p)] = std::move(msg).take();
    bytes_sent_ +=
        static_cast<std::int64_t>(out[static_cast<std::size_t>(p)].size());
  }
}

void ShardWorker::deliver(VertexId to, TokenSetView tokens) {
  const auto k = owned_index_[static_cast<std::size_t>(to)];
  OCD_ASSERT_MSG(k >= 0, "delivery routed to a non-owner shard");
  const auto slot = static_cast<std::size_t>(k);
  const auto row = static_cast<std::size_t>(
      row_map_[static_cast<std::size_t>(to)]);
  const MutableTokenSetView uni = uni_.row(slot);
  if (!touched_flag_[slot]) {
    touched_flag_[slot] = 1;
    touched_.push_back(k);
    uni.clear();
  }
  // Fused kernel: fresh = tokens - possession, possession |= tokens,
  // uni |= fresh, one pass.  Apply order across deliveries is
  // irrelevant: per destination, the useful total telescopes to
  // |union of sends - possession| and possession ends at the union.
  step_useful_ += static_cast<std::int64_t>(
      MutableTokenSetView::apply_fresh_union_merge(possession_.row(row), uni,
                                                   tokens, fresh_));
}

void ShardWorker::phase_apply(const std::vector<std::string>& in,
                              std::vector<std::string>& out) {
  const core::Instance& inst = *ctx_.instance;
  bool global_empty = plan_.empty();
  bool any_idle = plan_.idle_marked();
  global_moves_ = step_moves_;
  global_lost_ = step_lost_;
  step_useful_ = 0;
  touched_.clear();

  const std::span<const core::ArcSend> sends = plan_.sends();
  for (std::uint32_t i : local_deliv_)
    deliver(inst.graph().arc(sends[i].arc).to, sends[i].tokens);

  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    bytes_received_ +=
        static_cast<std::int64_t>(in[static_cast<std::size_t>(p)].size());
    util::BinStream msg(in[static_cast<std::size_t>(p)]);
    const bool peer_empty = msg.get_bool("plan.empty");
    const bool peer_idle = msg.get_bool("plan.idle");
    global_empty = global_empty && peer_empty;
    any_idle = any_idle || peer_idle;
    global_moves_ += static_cast<std::int64_t>(msg.get_varint("plan.moves"));
    global_lost_ += static_cast<std::int64_t>(msg.get_varint("plan.lost"));
    const std::uint64_t deliveries = msg.get_varint("plan.deliveries");
    for (std::uint64_t j = 0; j < deliveries; ++j) {
      const auto arc_id =
          static_cast<std::int64_t>(msg.get_varint("delivery.arc"));
      msg.require(arc_id >= 0 && arc_id < inst.graph().num_arcs(),
                  "delivery.arc", "arc id out of range");
      util::get_token_set_into(msg, "delivery.tokens", msg_tokens_);
      deliver(inst.graph().arc(static_cast<ArcId>(arc_id)).to, msg_tokens_);
    }
    msg.require(msg.exhausted(), "plan", "trailing bytes");
  }
  // Stall is decided from the round-1 flags alone, so every shard knows
  // it here; commit acts on it after round 2 keeps the transports in
  // lockstep (a stalled step carries no deliveries, so nothing above
  // mutated state).
  pending_stall_ = global_empty && !any_idle;

  // Post-delivery bookkeeping for the owned vertices that gained
  // tokens: satisfaction, completion steps, aggregate deltas.
  if (needs_aggregates_) {
    std::fill(dh_.begin(), dh_.end(), 0);
    std::fill(dn_.begin(), dn_.end(), 0);
  }
  for (std::int32_t k : touched_) {
    const auto slot = static_cast<std::size_t>(k);
    const TokenSetView uni = uni_.row(slot);
    if (uni.empty()) continue;  // all deliveries were redundant
    const VertexId v = owned_[slot];
    if (needs_aggregates_) {
      const TokenSet& want = inst.want(v);
      uni.for_each([&](TokenId t) {
        const auto ti = static_cast<std::size_t>(t);
        ++dh_[ti];
        if (want.test(t)) --dn_[ti];
      });
    }
    if (satisfied_[slot] == 0 &&
        inst.want(v).is_subset_of(possession_.row(static_cast<std::size_t>(
            row_map_[static_cast<std::size_t>(v)])))) {
      satisfied_[slot] = 1;
      completion_[slot] = step_ + 1;  // recorded after the step commits
      --local_unsatisfied_;
    }
  }

  out.assign(static_cast<std::size_t>(num_shards_), {});
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    util::BinStream msg;
    msg.put_varint(static_cast<std::uint64_t>(step_useful_));
    msg.put_varint(static_cast<std::uint64_t>(local_unsatisfied_));
    if (needs_aggregates_) {
      for (std::int64_t d : dh_) msg.put_varint_signed(d);
      for (std::int64_t d : dn_) msg.put_varint_signed(d);
    }
    const auto& subscribers = out_ghost_[static_cast<std::size_t>(p)];
    std::uint64_t updates = 0;
    for (VertexId v : subscribers) {
      const auto slot = static_cast<std::size_t>(
          owned_index_[static_cast<std::size_t>(v)]);
      if (touched_flag_[slot] && !uni_.row(slot).empty()) ++updates;
    }
    msg.put_varint(updates);
    for (VertexId v : subscribers) {
      const auto slot = static_cast<std::size_t>(
          owned_index_[static_cast<std::size_t>(v)]);
      if (!touched_flag_[slot] || uni_.row(slot).empty()) continue;
      msg.put_varint(static_cast<std::uint64_t>(v));
      util::put_token_set(msg, uni_.row(slot));
    }
    out[static_cast<std::size_t>(p)] = std::move(msg).take();
    bytes_sent_ +=
        static_cast<std::int64_t>(out[static_cast<std::size_t>(p)].size());
  }
  for (std::int32_t k : touched_) touched_flag_[static_cast<std::size_t>(k)] = 0;
}

void ShardWorker::phase_commit(const std::vector<std::string>& in) {
  const auto n = static_cast<std::int64_t>(ctx_.instance->num_vertices());
  std::int64_t global_useful = step_useful_;
  std::int64_t total_unsatisfied = local_unsatisfied_;
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == shard_) continue;
    bytes_received_ +=
        static_cast<std::int64_t>(in[static_cast<std::size_t>(p)].size());
    util::BinStream msg(in[static_cast<std::size_t>(p)]);
    global_useful += static_cast<std::int64_t>(msg.get_varint("apply.useful"));
    total_unsatisfied +=
        static_cast<std::int64_t>(msg.get_varint("apply.unsatisfied"));
    if (needs_aggregates_) {
      for (std::int64_t& d : dh_) d += msg.get_varint_signed("apply.dh");
      for (std::int64_t& d : dn_) d += msg.get_varint_signed("apply.dn");
    }
    const std::uint64_t updates = msg.get_varint("apply.ghosts");
    for (std::uint64_t j = 0; j < updates; ++j) {
      const auto v = static_cast<std::int64_t>(msg.get_varint("ghost.vertex"));
      msg.require(v >= 0 && v < n &&
                      row_map_[static_cast<std::size_t>(v)] >= 0,
                  "ghost.vertex", "not a local vertex of this shard");
      util::get_token_set_into(msg, "ghost.tokens", msg_tokens_);
      possession_.row(static_cast<std::size_t>(
          row_map_[static_cast<std::size_t>(v)])) |= msg_tokens_;
    }
    msg.require(msg.exhausted(), "apply", "trailing bytes");
  }

  if (pending_stall_) {
    // Mirrors the simulator: a stalled step is not recorded — no step
    // increment, no per-step series entry, no schedule timestep.
    stalled_ = true;
    running_ = false;
    return;
  }

  if (needs_aggregates_) {
    for (std::size_t t = 0; t < dh_.size(); ++t) {
      aggregates_.holders[t] += static_cast<std::int32_t>(dh_[t]);
      aggregates_.need[t] += static_cast<std::int32_t>(dn_[t]);
    }
  }

  if (ctx_.sim.record_schedule) {
    core::Timestep timestep;
    if (ordinal_schedule_) {
      // Keep the merged decision's first-touch ordinal of every
      // recorded send (loss-emptied slots drop their ordinal with the
      // send) — the fragment merge's interleaving key.
      OCD_ASSERT(ordinals_.size() == plan_.sends().size());
      std::vector<std::int64_t> ords;
      const std::span<const core::ArcSend> sends = plan_.sends();
      for (std::size_t i = 0; i < sends.size(); ++i) {
        if (sends[i].tokens.empty()) continue;
        timestep.sends().push_back(sends[i]);
        ords.push_back(ordinals_[i]);
      }
      schedule_ordinals_.push_back(std::move(ords));
    } else {
      for (const core::ArcSend& send : plan_.sends()) {
        if (send.tokens.empty()) continue;
        timestep.sends().push_back(send);
      }
    }
    schedule_.append(std::move(timestep));
  }

  if (shard_ == 0) {
    moves_per_step_.push_back(global_moves_);
    lost_per_step_.push_back(global_lost_);
    useful_total_ += global_useful;
    lost_total_ += global_lost_;
  }

  ++step_;
  unsatisfied_ = total_unsatisfied;
  if (global_useful > 0) {
    no_progress_ = 0;
  } else if (++no_progress_ >= ctx_.watchdog_window &&
             ctx_.watchdog_window > 0 && unsatisfied_ > 0) {
    watchdog_hit_ = true;
    running_ = false;
    return;
  }
  running_ = step_ < ctx_.sim.max_steps && unsatisfied_ > 0;
}

sim::Termination ShardWorker::termination() const {
  if (stalled_) return sim::Termination::kPolicyStalled;
  if (watchdog_hit_) return sim::Termination::kNoProgress;
  return unsatisfied_ == 0 ? sim::Termination::kSatisfied
                           : sim::Termination::kMaxSteps;
}

std::string ShardWorker::finish_fragment() {
  // Lifecycle honesty: policies get their end-of-run hook even though
  // no supported policy folds stats there today.
  sim::RunStats scratch;
  policy_->finish_run(scratch);

  util::BinStream frag;
  frag.put_u8(static_cast<std::uint8_t>(termination()));
  frag.put_varint(static_cast<std::uint64_t>(step_));
  frag.put_varint(static_cast<std::uint64_t>(unsatisfied_));
  frag.put_varint(static_cast<std::uint64_t>(bytes_sent_));
  frag.put_varint(static_cast<std::uint64_t>(bytes_received_));
  frag.put_varint(static_cast<std::uint64_t>(summary_entries_));
  frag.put_varint(static_cast<std::uint64_t>(wave_fallbacks_));
  if (shard_ == 0) {
    frag.put_varint(moves_per_step_.size());
    for (std::int64_t x : moves_per_step_)
      frag.put_varint(static_cast<std::uint64_t>(x));
    frag.put_varint(lost_per_step_.size());
    for (std::int64_t x : lost_per_step_)
      frag.put_varint(static_cast<std::uint64_t>(x));
    frag.put_varint(static_cast<std::uint64_t>(useful_total_));
    frag.put_varint(static_cast<std::uint64_t>(lost_total_));
  }
  std::uint64_t completed = 0;
  for (std::int64_t c : completion_)
    if (c >= 0) ++completed;
  frag.put_varint(completed);
  for (std::size_t k = 0; k < completion_.size(); ++k) {
    if (completion_[k] < 0) continue;
    frag.put_varint(static_cast<std::uint64_t>(owned_[k]));
    frag.put_varint(static_cast<std::uint64_t>(completion_[k]));
  }
  std::uint64_t senders = 0;
  for (std::int64_t c : sent_by_)
    if (c != 0) ++senders;
  frag.put_varint(senders);
  for (std::size_t v = 0; v < sent_by_.size(); ++v) {
    if (sent_by_[v] == 0) continue;
    frag.put_varint(static_cast<std::uint64_t>(v));
    frag.put_varint(static_cast<std::uint64_t>(sent_by_[v]));
  }
  frag.put_bool(ctx_.sim.record_schedule);
  if (ctx_.sim.record_schedule) util::put_schedule(frag, schedule_);
  frag.put_bool(ordinal_schedule_);
  if (ordinal_schedule_) {
    OCD_ASSERT(schedule_ordinals_.size() == schedule_.steps().size());
    frag.put_varint(schedule_ordinals_.size());
    for (const auto& step : schedule_ordinals_) {
      frag.put_varint(step.size());
      for (std::int64_t o : step)
        frag.put_varint(static_cast<std::uint64_t>(o));
    }
  }
  return std::move(frag).take();
}

std::string ShardWorker::save_checkpoint() const {
  Checkpoint c;
  c.shard = shard_;
  c.num_shards = num_shards_;
  c.step = step_;
  c.fault_cursor = step_;  // begin_step has run once per committed step
  c.unsatisfied = unsatisfied_;
  c.local_unsatisfied = local_unsatisfied_;
  c.no_progress = no_progress_;
  c.bytes_sent = bytes_sent_;
  c.bytes_received = bytes_received_;
  c.summary_entries = summary_entries_;
  c.wave_fallbacks = wave_fallbacks_;
  c.possession = possession_;
  c.satisfied = satisfied_;
  c.completion = completion_;
  for (std::size_t v = 0; v < sent_by_.size(); ++v)
    if (sent_by_[v] != 0)
      c.sent_by.emplace_back(static_cast<std::int64_t>(v), sent_by_[v]);
  if (needs_aggregates_) {
    c.holders = aggregates_.holders;
    c.need = aggregates_.need;
  }
  util::BinStream policy_state;
  policy_->save_state(policy_state);
  c.policy_state = std::move(policy_state).take();
  if (shard_ == 0) {
    c.moves_per_step = moves_per_step_;
    c.lost_per_step = lost_per_step_;
    c.useful_total = useful_total_;
    c.lost_total = lost_total_;
  }
  c.has_schedule = ctx_.sim.record_schedule;
  if (c.has_schedule) c.schedule = schedule_;
  if (ordinal_schedule_) c.schedule_ordinals = schedule_ordinals_;
  util::BinStream out;
  put_checkpoint(out, c);
  return std::move(out).take();
}

void ShardWorker::restore_checkpoint(const std::string& bytes) {
  util::BinStream in(bytes);
  Checkpoint c = get_checkpoint(in, "checkpoint", shard_);
  in.require(in.exhausted(), "checkpoint", "trailing bytes");
  in.require(c.num_shards == num_shards_, "checkpoint.num_shards",
             "shard count does not match this run");
  in.require(c.possession.rows() == possession_.rows() &&
                 c.possession.universe_size() == possession_.universe_size(),
             "checkpoint.possession", "row layout does not match this shard");
  in.require(c.satisfied.size() == satisfied_.size(), "checkpoint.satisfied",
             "owned slot count does not match this shard");
  in.require(c.step <= ctx_.sim.max_steps, "checkpoint.step",
             "beyond max_steps");
  in.require(c.holders.empty() == !needs_aggregates_,
             "checkpoint.has_aggregates",
             "aggregate presence does not match the policy");
  in.require(c.has_schedule == ctx_.sim.record_schedule,
             "checkpoint.has_schedule",
             "schedule presence does not match the run options");
  if (c.has_schedule)
    in.require(c.schedule.steps().size() == static_cast<std::size_t>(c.step),
               "checkpoint.schedule", "length != committed steps");
  in.require(c.schedule_ordinals.empty() ==
                 (!ordinal_schedule_ || c.schedule.steps().empty()),
             "checkpoint.has_ordinals",
             "ordinal presence does not match the run options");
  const auto n = static_cast<std::int64_t>(sent_by_.size());
  for (const auto& [vertex, count] : c.sent_by)
    in.require(vertex < n, "checkpoint.sender.vertex",
               "vertex id out of range");

  possession_ = std::move(c.possession);
  satisfied_ = std::move(c.satisfied);
  completion_ = std::move(c.completion);
  std::fill(sent_by_.begin(), sent_by_.end(), 0);
  for (const auto& [vertex, count] : c.sent_by)
    sent_by_[static_cast<std::size_t>(vertex)] = count;
  if (needs_aggregates_) {
    aggregates_.holders = std::move(c.holders);
    aggregates_.need = std::move(c.need);
  }
  step_ = c.step;
  unsatisfied_ = c.unsatisfied;
  local_unsatisfied_ = c.local_unsatisfied;
  no_progress_ = c.no_progress;
  bytes_sent_ = c.bytes_sent;
  bytes_received_ = c.bytes_received;
  summary_entries_ = c.summary_entries;
  wave_fallbacks_ = c.wave_fallbacks;
  stalled_ = false;
  watchdog_hit_ = false;
  pending_stall_ = false;
  running_ = step_ < ctx_.sim.max_steps && unsatisfied_ > 0;
  util::BinStream policy_state(std::move(c.policy_state));
  policy_->load_state(policy_state);
  policy_state.require(policy_state.exhausted(), "checkpoint.policy_state",
                       "trailing bytes");
  if (shard_ == 0) {
    moves_per_step_ = std::move(c.moves_per_step);
    lost_per_step_ = std::move(c.lost_per_step);
    useful_total_ = c.useful_total;
    lost_total_ = c.lost_total;
  }
  if (ctx_.sim.record_schedule) schedule_ = std::move(c.schedule);
  if (ordinal_schedule_) schedule_ordinals_ = std::move(c.schedule_ordinals);
  // A respawned forked worker inherited the parent's reset-state fault
  // model copy-on-write; fast-forward the per-arc chains to the cursor.
  // In-process workers share the live model and must not touch it —
  // replay reads the recorded loss traces instead.
  if (faulted_ && ctx_.worker_advances_faults)
    for (std::int64_t k = 0; k < c.fault_cursor; ++k)
      ctx_.sim.faults->begin_step(k, ctx_.instance->graph());
}

// ---------------------------------------------------------------------
// run_sharded
// ---------------------------------------------------------------------

std::int32_t resolve_num_shards(std::int32_t requested) {
  if (requested > 0) return requested;
  if (requested < 0)
    throw Error("num_shards must be >= 0, got " + std::to_string(requested));
  const char* env = std::getenv("OCD_SHARDS");
  if (env == nullptr) return 1;
  return static_cast<std::int32_t>(util::parse_env_int("OCD_SHARDS", env));
}

std::int32_t resolve_wave_topk(std::int32_t requested) {
  if (requested > 0) return requested;
  if (requested < 0)
    throw Error("ShardOptions.wave_topk must be >= 0, got " +
                std::to_string(requested));
  const char* env = std::getenv("OCD_SHARD_WAVE_TOPK");
  if (env == nullptr) return 8;
  return static_cast<std::int32_t>(
      util::parse_env_int("OCD_SHARD_WAVE_TOPK", env, 1 << 20));
}

namespace {

/// Decoded finish fragment of one shard.
struct Fragment {
  sim::Termination termination = sim::Termination::kSatisfied;
  std::int64_t steps = 0;
  std::int64_t unsatisfied = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t summary_entries = 0;
  std::int64_t wave_fallbacks = 0;
  std::vector<std::int64_t> moves_per_step;  // shard 0 only
  std::vector<std::int64_t> lost_per_step;   // shard 0 only
  std::int64_t useful_total = 0;             // shard 0 only
  std::int64_t lost_total = 0;               // shard 0 only
  std::vector<std::pair<VertexId, std::int64_t>> completion;
  std::vector<std::pair<VertexId, std::int64_t>> sent_by;
  bool has_schedule = false;
  core::Schedule schedule;
  /// Coordinated "global" only: per timestep, the first-touch ordinal
  /// of each recorded send (ordinal-keyed schedule interleaving).
  std::vector<std::vector<std::int64_t>> ordinals;
};

Fragment decode_fragment(const std::string& bytes, bool shard0) {
  util::BinStream frag(bytes);
  Fragment out;
  const std::uint8_t t = frag.get_u8("fragment.termination");
  frag.require(t <= static_cast<std::uint8_t>(sim::Termination::kMaxSteps),
               "fragment.termination", "unknown termination value");
  out.termination = static_cast<sim::Termination>(t);
  out.steps = static_cast<std::int64_t>(frag.get_varint("fragment.steps"));
  out.unsatisfied =
      static_cast<std::int64_t>(frag.get_varint("fragment.unsatisfied"));
  out.bytes_sent =
      static_cast<std::int64_t>(frag.get_varint("fragment.bytes_sent"));
  out.bytes_received =
      static_cast<std::int64_t>(frag.get_varint("fragment.bytes_received"));
  out.summary_entries =
      static_cast<std::int64_t>(frag.get_varint("fragment.summary_entries"));
  out.wave_fallbacks =
      static_cast<std::int64_t>(frag.get_varint("fragment.wave_fallbacks"));
  if (shard0) {
    const std::uint64_t nm = frag.get_varint("fragment.moves_per_step");
    frag.require(nm == static_cast<std::uint64_t>(out.steps),
                 "fragment.moves_per_step", "length != steps");
    out.moves_per_step.reserve(nm);
    for (std::uint64_t i = 0; i < nm; ++i)
      out.moves_per_step.push_back(
          static_cast<std::int64_t>(frag.get_varint("fragment.moves")));
    const std::uint64_t nl = frag.get_varint("fragment.lost_per_step");
    frag.require(nl == nm, "fragment.lost_per_step", "length != steps");
    out.lost_per_step.reserve(nl);
    for (std::uint64_t i = 0; i < nl; ++i)
      out.lost_per_step.push_back(
          static_cast<std::int64_t>(frag.get_varint("fragment.lost")));
    out.useful_total =
        static_cast<std::int64_t>(frag.get_varint("fragment.useful"));
    out.lost_total =
        static_cast<std::int64_t>(frag.get_varint("fragment.lost_total"));
  }
  const std::uint64_t nc = frag.get_varint("fragment.completions");
  out.completion.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) {
    const auto v =
        static_cast<VertexId>(frag.get_varint("fragment.completion.vertex"));
    const auto s = static_cast<std::int64_t>(
        frag.get_varint("fragment.completion.step"));
    out.completion.emplace_back(v, s);
  }
  const std::uint64_t ns = frag.get_varint("fragment.senders");
  out.sent_by.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    const auto v =
        static_cast<VertexId>(frag.get_varint("fragment.sender.vertex"));
    const auto c =
        static_cast<std::int64_t>(frag.get_varint("fragment.sender.count"));
    out.sent_by.emplace_back(v, c);
  }
  out.has_schedule = frag.get_bool("fragment.has_schedule");
  if (out.has_schedule)
    out.schedule = util::get_schedule(frag, "fragment.schedule");
  if (frag.get_bool("fragment.has_ordinals")) {
    frag.require(out.has_schedule, "fragment.has_ordinals",
                 "ordinals without a schedule");
    const std::uint64_t n_steps = frag.get_varint("fragment.ordinals");
    frag.require(n_steps == out.schedule.steps().size(), "fragment.ordinals",
                 "length != schedule timesteps");
    out.ordinals.reserve(n_steps);
    for (std::uint64_t i = 0; i < n_steps; ++i) {
      const std::uint64_t len = frag.get_varint("fragment.ordinals.step");
      frag.require(len == out.schedule.steps()[i].sends().size(),
                   "fragment.ordinals.step",
                   "length != the timestep's send count");
      std::vector<std::int64_t> step;
      step.reserve(len);
      for (std::uint64_t j = 0; j < len; ++j)
        step.push_back(static_cast<std::int64_t>(
            frag.get_varint("fragment.ordinals.value")));
      out.ordinals.push_back(std::move(step));
    }
  }
  frag.require(frag.exhausted(), "fragment", "trailing bytes");
  return out;
}

sim::RunResult merge_fragments(const core::Instance& inst,
                               std::string_view policy_name,
                               const std::vector<std::string>& encoded) {
  const auto num_shards = static_cast<std::int32_t>(encoded.size());
  std::vector<Fragment> frags;
  frags.reserve(encoded.size());
  for (std::int32_t s = 0; s < num_shards; ++s)
    frags.push_back(decode_fragment(encoded[static_cast<std::size_t>(s)],
                                    s == 0));
  for (std::int32_t s = 1; s < num_shards; ++s) {
    OCD_ASSERT_MSG(frags[static_cast<std::size_t>(s)].termination ==
                           frags[0].termination &&
                       frags[static_cast<std::size_t>(s)].steps ==
                           frags[0].steps &&
                       frags[static_cast<std::size_t>(s)].unsatisfied ==
                           frags[0].unsatisfied,
                   "shards disagree on the run outcome");
  }

  sim::RunResult result;
  const Fragment& lead = frags[0];
  result.steps = lead.steps;
  result.termination = lead.termination;
  result.success = lead.unsatisfied == 0;
  result.stats.moves_per_step = lead.moves_per_step;
  result.stats.lost_per_step = lead.lost_per_step;
  result.stats.useful_moves = lead.useful_total;
  result.stats.lost_moves = lead.lost_total;
  std::int64_t total_moves = 0;
  for (std::int64_t x : lead.moves_per_step) total_moves += x;
  result.stats.redundant_moves =
      total_moves - lead.useful_total - lead.lost_total;
  for (const Fragment& frag : frags) {
    result.stats.shard_bytes_sent += frag.bytes_sent;
    result.stats.shard_bytes_received += frag.bytes_received;
    result.stats.shard_summary_entries += frag.summary_entries;
  }
  // The fallback decision is part of the replicated merge, so every
  // shard counts the same steps — report it once, not per shard.
  result.stats.shard_wave_fallbacks = lead.wave_fallbacks;

  const auto n = static_cast<std::size_t>(inst.num_vertices());
  result.stats.completion_step.assign(n, -1);
  result.stats.sent_by_vertex.assign(n, 0);
  for (const Fragment& frag : frags) {
    for (const auto& [v, s] : frag.completion)
      result.stats.completion_step[static_cast<std::size_t>(v)] = s;
    // Upload counts are summed: under the "local" policy a sender's
    // out-arcs can be planned by several receiver-owning shards.
    for (const auto& [v, c] : frag.sent_by)
      result.stats.sent_by_vertex[static_cast<std::size_t>(v)] += c;
  }

  if (lead.has_schedule) {
    // Fragments hold disjoint send subsets of each timestep.  Restore
    // the single-process order: plan_vertex policies emit grouped by
    // sender (each sender lives wholly in one fragment, so a stable
    // sort by sender reassembles vertex-ascending plan order); "local"
    // and "bandwidth" emit arc-ascending globally; coordinated
    // "global" emits in wave order, reassembled by the first-touch
    // ordinals the fragments carry (single-shard "global" is already
    // the whole plan order and must not be re-sorted).
    const bool ordinal_ordered = policy_name == "global" && num_shards > 1;
    const bool plan_ordered = policy_name == "global" && num_shards == 1;
    const bool arc_ordered =
        policy_name == "local" || policy_name == "bandwidth";
    if (ordinal_ordered)
      for (const Fragment& frag : frags)
        OCD_ASSERT_MSG(frag.ordinals.size() ==
                           static_cast<std::size_t>(lead.steps),
                       "fragment missing schedule ordinals");
    const Digraph& graph = inst.graph();
    for (std::int64_t i = 0; i < lead.steps; ++i) {
      core::Timestep merged;
      if (ordinal_ordered) {
        std::vector<std::pair<std::int64_t, core::ArcSend>> keyed;
        for (Fragment& frag : frags) {
          auto& sends =
              frag.schedule.steps()[static_cast<std::size_t>(i)].sends();
          const auto& ords = frag.ordinals[static_cast<std::size_t>(i)];
          for (std::size_t j = 0; j < sends.size(); ++j)
            keyed.emplace_back(ords[j], std::move(sends[j]));
        }
        std::sort(keyed.begin(), keyed.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        for (auto& [ordinal, send] : keyed)
          merged.sends().push_back(std::move(send));
      } else {
        for (Fragment& frag : frags) {
          auto& sends =
              frag.schedule.steps()[static_cast<std::size_t>(i)].sends();
          for (core::ArcSend& send : sends)
            merged.sends().push_back(std::move(send));
        }
        if (arc_ordered) {
          std::sort(merged.sends().begin(), merged.sends().end(),
                    [](const core::ArcSend& a, const core::ArcSend& b) {
                      return a.arc < b.arc;
                    });
        } else if (!plan_ordered) {
          std::stable_sort(merged.sends().begin(), merged.sends().end(),
                           [&graph](const core::ArcSend& a,
                                    const core::ArcSend& b) {
                             return graph.arc(a.arc).from <
                                    graph.arc(b.arc).from;
                           });
        }
      }
      result.schedule.append(std::move(merged));
    }
  }

  result.bandwidth = result.stats.total_moves();
  OCD_ENSURES(result.stats.consistent_with_steps(result.steps));
  return result;
}

}  // namespace

sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options,
                           const Partition& partition) {
  validate_envelope(policy_name, options.sim);
  instance.validate();
  const std::int32_t num_shards = resolve_num_shards(options.num_shards);
  if (partition.num_shards != num_shards)
    throw Error("partition has " + std::to_string(partition.num_shards) +
                " shards but options resolve to " +
                std::to_string(num_shards));
  OCD_EXPECTS(partition.shard_of.size() ==
              static_cast<std::size_t>(instance.num_vertices()));

  Stopwatch timer;
  RunContext ctx;
  ctx.instance = &instance;
  ctx.partition = &partition;
  ctx.policy_name = std::string(policy_name);
  ctx.sim = options.sim;
  ctx.knowledge = heuristics::make_policy(policy_name)->knowledge_class();
  ctx.coordinated = ctx.knowledge == sim::KnowledgeClass::kGlobal;
  ctx.wave_topk = resolve_wave_topk(options.wave_topk);
  ctx.watchdog_window = options.sim.no_progress_window;
  if (ctx.watchdog_window == 0)
    ctx.watchdog_window =
        options.sim.faults != nullptr ? kDefaultNoProgressWindow : -1;
  ctx.worker_advances_faults = options.transport == TransportKind::kForked;
  if (options.barrier_timeout_ms <= 0)
    throw Error("ShardOptions.barrier_timeout_ms must be positive, got " +
                std::to_string(options.barrier_timeout_ms));
  if (options.recovery.max_respawns < 0)
    throw Error("RecoveryOptions.max_respawns must be >= 0, got " +
                std::to_string(options.recovery.max_respawns));
  ctx.barrier_timeout_ms = options.barrier_timeout_ms;
  ctx.checkpoint_interval =
      resolve_checkpoint_interval(options.recovery.checkpoint_interval);
  ctx.max_respawns = options.recovery.max_respawns;
  ctx.crash_plan = options.recovery.crash_plan;
  ctx.recovery_armed =
      ctx.checkpoint_interval > 0 || ctx.crash_plan != nullptr;
  ctx.log_losses = ctx.recovery_armed && options.sim.faults != nullptr &&
                   options.transport == TransportKind::kInProcess;
  ctx.static_capacity.resize(
      static_cast<std::size_t>(instance.graph().num_arcs()));
  for (ArcId a = 0; a < instance.graph().num_arcs(); ++a)
    ctx.static_capacity[static_cast<std::size_t>(a)] =
        instance.graph().arc(a).capacity;
  // One reset in the parent: the in-process workers share the model;
  // forked children inherit the reset state copy-on-write and advance
  // their private copies in lockstep.
  if (options.sim.faults != nullptr)
    options.sim.faults->reset(instance, options.sim.seed);

  TransportResult transported;
  if (options.transport == TransportKind::kInProcess) {
    InProcessTransport transport;
    transported = transport.run(ctx);
  } else {
    ForkTransport transport;
    transported = transport.run(ctx);
  }

  sim::RunResult result =
      merge_fragments(instance, policy_name, transported.fragments);
  result.stats.worker_crashes = transported.recovery.worker_crashes;
  result.stats.recoveries = transported.recovery.recoveries;
  result.stats.replayed_steps = transported.recovery.replayed_steps;
  result.stats.checkpoint_bytes = transported.recovery.checkpoint_bytes;
  result.stats.wall_seconds = timer.seconds();
  return result;
}

sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options) {
  const std::int32_t num_shards = resolve_num_shards(options.num_shards);
  if (num_shards > instance.num_vertices())
    throw Error("num_shards (" + std::to_string(num_shards) +
                ") exceeds the vertex count (" +
                std::to_string(instance.num_vertices()) + ")");
  PartitionOptions part_options;
  part_options.num_shards = num_shards;
  part_options.balance_eps = resolve_balance_eps(options.balance_eps);
  // A relaxed band is only worth its imbalance if the flow stage gets
  // to spend it on the cut; a resolved 0 keeps the historical partition
  // bit-for-bit.
  part_options.flow_refine = part_options.balance_eps > 0;
  const Partition partition =
      partition_vertices(instance.graph(), part_options);
  ShardOptions resolved = options;
  resolved.num_shards = num_shards;
  resolved.balance_eps = part_options.balance_eps;
  return run_sharded(instance, policy_name, resolved, partition);
}

}  // namespace ocd::shard
