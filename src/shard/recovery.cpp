#include "ocd/shard/recovery.hpp"

#include <cstdlib>

#include "ocd/util/binstream.hpp"
#include "ocd/util/env.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::shard {

namespace {

/// "OCK1": checkpoint record magic + version in one word, so a frame
/// that is not a checkpoint at all fails on the first field.
constexpr std::uint32_t kCheckpointMagic = 0x4F434B31u;

std::tuple<std::int32_t, std::int64_t, std::uint8_t> point_key(
    std::int32_t shard, std::int64_t step, CrashPhase phase) {
  return {shard, step, static_cast<std::uint8_t>(phase)};
}

}  // namespace

const char* crash_phase_name(CrashPhase phase) noexcept {
  switch (phase) {
    case CrashPhase::kPlan:
      return "plan";
    case CrashPhase::kApply:
      return "apply";
    case CrashPhase::kCommit:
      return "commit";
    case CrashPhase::kWave:
      return "wave";
  }
  return "?";
}

CrashPlan& CrashPlan::crash(std::int32_t shard, std::int64_t step,
                            CrashPhase phase) {
  points_[point_key(shard, step, phase)] = {CrashAction::kCrash, false};
  return *this;
}

CrashPlan& CrashPlan::hang(std::int32_t shard, std::int64_t step,
                           CrashPhase phase) {
  points_[point_key(shard, step, phase)] = {CrashAction::kHang, false};
  return *this;
}

CrashPlan& CrashPlan::crash_always(std::int32_t shard, std::int64_t step,
                                   CrashPhase phase) {
  points_[point_key(shard, step, phase)] = {CrashAction::kCrash, true};
  return *this;
}

CrashPlan& CrashPlan::random_crashes(double rate, std::uint64_t seed) {
  rate_ = rate;
  seed_ = seed;
  return *this;
}

CrashAction CrashPlan::action(std::int32_t shard, std::int64_t step,
                              CrashPhase phase,
                              std::int32_t incarnation) const {
  const auto it = points_.find(point_key(shard, step, phase));
  if (it != points_.end() &&
      (incarnation == 0 || it->second.every_incarnation))
    return it->second.action;
  if (rate_ > 0.0 && incarnation == 0) {
    // Derived per coordinate, like every other randomized decision in
    // the sharded runtime: the crash schedule is a pure function of
    // (seed, shard, step, phase), independent of transport or timing.
    Rng rng(derive_seed(seed_,
                        (static_cast<std::uint64_t>(shard) << 8) |
                            static_cast<std::uint64_t>(phase),
                        static_cast<std::uint64_t>(step)));
    if (rng.chance(rate_)) return CrashAction::kCrash;
  }
  return CrashAction::kNone;
}

std::int64_t resolve_checkpoint_interval(std::int64_t requested) {
  if (requested > 0) return requested;
  if (requested < 0)
    throw Error("RecoveryOptions.checkpoint_interval must be >= 0, got " +
                std::to_string(requested));
  const char* env = std::getenv("OCD_SHARD_CHECKPOINT_INTERVAL");
  if (env == nullptr) return 0;
  return util::parse_env_int("OCD_SHARD_CHECKPOINT_INTERVAL", env);
}

void put_checkpoint(util::BinStream& out, const Checkpoint& checkpoint) {
  out.put_u32(kCheckpointMagic);
  out.put_varint(static_cast<std::uint64_t>(checkpoint.shard));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.num_shards));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.step));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.fault_cursor));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.unsatisfied));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.local_unsatisfied));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.no_progress));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.bytes_sent));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.bytes_received));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.summary_entries));
  out.put_varint(static_cast<std::uint64_t>(checkpoint.wave_fallbacks));
  util::put_token_matrix(out, checkpoint.possession);
  out.put_varint(checkpoint.satisfied.size());
  for (char s : checkpoint.satisfied)
    out.put_u8(static_cast<std::uint8_t>(s));
  out.put_varint(checkpoint.completion.size());
  for (std::int64_t c : checkpoint.completion) out.put_varint_signed(c);
  out.put_varint(checkpoint.sent_by.size());
  for (const auto& [vertex, count] : checkpoint.sent_by) {
    out.put_varint(static_cast<std::uint64_t>(vertex));
    out.put_varint(static_cast<std::uint64_t>(count));
  }
  out.put_bool(!checkpoint.holders.empty());
  if (!checkpoint.holders.empty()) {
    out.put_varint(checkpoint.holders.size());
    for (std::int32_t h : checkpoint.holders)
      out.put_varint(static_cast<std::uint64_t>(h));
    for (std::int32_t n : checkpoint.need)
      out.put_varint(static_cast<std::uint64_t>(n));
  }
  out.put_string(checkpoint.policy_state);
  out.put_bool(!checkpoint.moves_per_step.empty() || checkpoint.shard == 0);
  if (!checkpoint.moves_per_step.empty() || checkpoint.shard == 0) {
    out.put_varint(checkpoint.moves_per_step.size());
    for (std::int64_t x : checkpoint.moves_per_step)
      out.put_varint(static_cast<std::uint64_t>(x));
    for (std::int64_t x : checkpoint.lost_per_step)
      out.put_varint(static_cast<std::uint64_t>(x));
    out.put_varint(static_cast<std::uint64_t>(checkpoint.useful_total));
    out.put_varint(static_cast<std::uint64_t>(checkpoint.lost_total));
  }
  out.put_bool(checkpoint.has_schedule);
  if (checkpoint.has_schedule) util::put_schedule(out, checkpoint.schedule);
  out.put_bool(!checkpoint.schedule_ordinals.empty());
  if (!checkpoint.schedule_ordinals.empty()) {
    out.put_varint(checkpoint.schedule_ordinals.size());
    for (const auto& step : checkpoint.schedule_ordinals) {
      out.put_varint(step.size());
      for (std::int64_t o : step)
        out.put_varint(static_cast<std::uint64_t>(o));
    }
  }
}

Checkpoint get_checkpoint(util::BinStream& in, const char* field,
                          std::int32_t expect_shard) {
  Checkpoint out;
  in.require(in.get_u32(field) == kCheckpointMagic, field,
             "bad checkpoint magic");
  const auto remaining = [&] { return in.size() - in.read_pos(); };

  out.shard = static_cast<std::int32_t>(in.get_varint("checkpoint.shard"));
  out.num_shards =
      static_cast<std::int32_t>(in.get_varint("checkpoint.num_shards"));
  in.require(out.num_shards > 0, "checkpoint.num_shards", "not positive");
  in.require(out.shard >= 0 && out.shard < out.num_shards, "checkpoint.shard",
             "shard id out of range");
  in.require(expect_shard < 0 || out.shard == expect_shard,
             "checkpoint.shard", "checkpoint from the wrong shard");
  out.step = static_cast<std::int64_t>(in.get_varint("checkpoint.step"));
  out.fault_cursor =
      static_cast<std::int64_t>(in.get_varint("checkpoint.fault_cursor"));
  in.require(out.fault_cursor == out.step, "checkpoint.fault_cursor",
             "fault cursor != committed step");
  out.unsatisfied =
      static_cast<std::int64_t>(in.get_varint("checkpoint.unsatisfied"));
  out.local_unsatisfied = static_cast<std::int64_t>(
      in.get_varint("checkpoint.local_unsatisfied"));
  in.require(out.local_unsatisfied <= out.unsatisfied,
             "checkpoint.local_unsatisfied", "exceeds the global count");
  out.no_progress =
      static_cast<std::int64_t>(in.get_varint("checkpoint.no_progress"));
  out.bytes_sent =
      static_cast<std::int64_t>(in.get_varint("checkpoint.bytes_sent"));
  out.bytes_received =
      static_cast<std::int64_t>(in.get_varint("checkpoint.bytes_received"));
  out.summary_entries =
      static_cast<std::int64_t>(in.get_varint("checkpoint.summary_entries"));
  out.wave_fallbacks =
      static_cast<std::int64_t>(in.get_varint("checkpoint.wave_fallbacks"));
  out.possession = util::get_token_matrix(in, "checkpoint.possession");

  const std::uint64_t n_satisfied = in.get_varint("checkpoint.satisfied");
  in.require(n_satisfied <= remaining(), "checkpoint.satisfied",
             "count exceeds the remaining bytes");
  out.satisfied.reserve(n_satisfied);
  for (std::uint64_t i = 0; i < n_satisfied; ++i) {
    const std::uint8_t s = in.get_u8("checkpoint.satisfied");
    in.require(s <= 1, "checkpoint.satisfied", "not a boolean");
    out.satisfied.push_back(static_cast<char>(s));
  }
  const std::uint64_t n_completion = in.get_varint("checkpoint.completion");
  in.require(n_completion == n_satisfied, "checkpoint.completion",
             "length != satisfied length");
  out.completion.reserve(n_completion);
  for (std::uint64_t i = 0; i < n_completion; ++i) {
    const std::int64_t c = in.get_varint_signed("checkpoint.completion");
    in.require(c >= -1 && c <= out.step, "checkpoint.completion",
               "completion step out of range");
    in.require((c >= 0) == (out.satisfied[i] != 0), "checkpoint.completion",
               "completion disagrees with the satisfied flag");
    out.completion.push_back(c);
  }
  const std::uint64_t n_senders = in.get_varint("checkpoint.senders");
  in.require(n_senders <= remaining(), "checkpoint.senders",
             "count exceeds the remaining bytes");
  out.sent_by.reserve(n_senders);
  std::int64_t prev_vertex = -1;
  for (std::uint64_t i = 0; i < n_senders; ++i) {
    const auto v =
        static_cast<std::int64_t>(in.get_varint("checkpoint.sender.vertex"));
    in.require(v > prev_vertex, "checkpoint.sender.vertex",
               "vertices not strictly increasing");
    prev_vertex = v;
    const auto c =
        static_cast<std::int64_t>(in.get_varint("checkpoint.sender.count"));
    in.require(c > 0, "checkpoint.sender.count", "count not positive");
    out.sent_by.emplace_back(v, c);
  }

  if (in.get_bool("checkpoint.has_aggregates")) {
    const std::uint64_t n_tokens = in.get_varint("checkpoint.aggregates");
    in.require(n_tokens == out.possession.universe_size(),
               "checkpoint.aggregates", "length != token universe");
    out.holders.reserve(n_tokens);
    for (std::uint64_t i = 0; i < n_tokens; ++i)
      out.holders.push_back(
          static_cast<std::int32_t>(in.get_varint("checkpoint.holders")));
    out.need.reserve(n_tokens);
    for (std::uint64_t i = 0; i < n_tokens; ++i)
      out.need.push_back(
          static_cast<std::int32_t>(in.get_varint("checkpoint.need")));
  }
  out.policy_state = in.get_string("checkpoint.policy_state");

  if (in.get_bool("checkpoint.has_series")) {
    in.require(out.shard == 0, "checkpoint.has_series",
               "series on a non-zero shard");
    const std::uint64_t n_steps = in.get_varint("checkpoint.series");
    in.require(n_steps == static_cast<std::uint64_t>(out.step),
               "checkpoint.series", "length != committed steps");
    out.moves_per_step.reserve(n_steps);
    for (std::uint64_t i = 0; i < n_steps; ++i)
      out.moves_per_step.push_back(
          static_cast<std::int64_t>(in.get_varint("checkpoint.moves")));
    out.lost_per_step.reserve(n_steps);
    for (std::uint64_t i = 0; i < n_steps; ++i)
      out.lost_per_step.push_back(
          static_cast<std::int64_t>(in.get_varint("checkpoint.lost")));
    out.useful_total =
        static_cast<std::int64_t>(in.get_varint("checkpoint.useful_total"));
    out.lost_total =
        static_cast<std::int64_t>(in.get_varint("checkpoint.lost_total"));
  } else {
    in.require(out.shard != 0, "checkpoint.has_series",
               "shard 0 checkpoint without the global series");
  }
  out.has_schedule = in.get_bool("checkpoint.has_schedule");
  if (out.has_schedule)
    out.schedule = util::get_schedule(in, "checkpoint.schedule");
  if (in.get_bool("checkpoint.has_ordinals")) {
    in.require(out.has_schedule, "checkpoint.has_ordinals",
               "ordinals without a schedule");
    const std::uint64_t n_steps = in.get_varint("checkpoint.ordinals");
    in.require(n_steps == out.schedule.steps().size(), "checkpoint.ordinals",
               "length != schedule timesteps");
    out.schedule_ordinals.reserve(n_steps);
    for (std::uint64_t i = 0; i < n_steps; ++i) {
      const std::uint64_t len = in.get_varint("checkpoint.ordinals.step");
      in.require(len == out.schedule.steps()[i].sends().size(),
                 "checkpoint.ordinals.step",
                 "length != the timestep's send count");
      std::vector<std::int64_t> step;
      step.reserve(len);
      for (std::uint64_t j = 0; j < len; ++j)
        step.push_back(static_cast<std::int64_t>(
            in.get_varint("checkpoint.ordinals.value")));
      out.schedule_ordinals.push_back(std::move(step));
    }
  }
  return out;
}

}  // namespace ocd::shard
