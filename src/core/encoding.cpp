#include "ocd/core/encoding.hpp"

#include <bit>

#include "ocd/util/error.hpp"

namespace ocd::core {

namespace {

constexpr std::uint32_t kMagic = 0x4f434453;  // "OCDS"

/// Bits needed to represent values in [0, n); at least 1.
int bits_for(std::uint32_t n) {
  if (n <= 1) return 1;
  return std::bit_width(n - 1);
}

class BitWriter {
 public:
  void write(std::uint64_t value, int bits) {
    OCD_EXPECTS(bits >= 0 && bits <= 64);
    for (int i = bits - 1; i >= 0; --i) push_bit((value >> i) & 1ULL);
  }

  void write_u32(std::uint32_t value) { write(value, 32); }

  [[nodiscard]] std::vector<std::uint8_t> finish() {
    // Flush the partial byte (zero-padded).
    if (fill_ != 0) {
      bytes_.push_back(static_cast<std::uint8_t>(current_ << (8 - fill_)));
      current_ = 0;
      fill_ = 0;
    }
    return std::move(bytes_);
  }

 private:
  void push_bit(std::uint64_t bit) {
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit & 1));
    if (++fill_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      fill_ = 0;
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint64_t read(int bits) {
    OCD_EXPECTS(bits >= 0 && bits <= 64);
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i) value = (value << 1) | read_bit();
    return value;
  }

  std::uint32_t read_u32() { return static_cast<std::uint32_t>(read(32)); }

 private:
  std::uint64_t read_bit() {
    const std::size_t byte = pos_ / 8;
    if (byte >= bytes_.size()) throw Error("schedule decoding: truncated input");
    const int shift = 7 - static_cast<int>(pos_ % 8);
    ++pos_;
    return (bytes_[byte] >> shift) & 1U;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_schedule(const Schedule& schedule,
                                          std::int32_t num_arcs,
                                          std::int32_t num_tokens) {
  OCD_EXPECTS(num_arcs >= 0 && num_tokens >= 0);
  const int arc_bits = bits_for(static_cast<std::uint32_t>(num_arcs));
  const int token_bits = bits_for(static_cast<std::uint32_t>(num_tokens));
  // A per-step move count is bounded by num_arcs * num_tokens.
  const int count_bits = bits_for(static_cast<std::uint32_t>(
                             std::min<std::int64_t>(
                                 static_cast<std::int64_t>(num_arcs) *
                                     num_tokens,
                                 0x7fffffff))) +
                         1;

  BitWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(static_cast<std::uint32_t>(num_arcs));
  writer.write_u32(static_cast<std::uint32_t>(num_tokens));
  writer.write_u32(static_cast<std::uint32_t>(schedule.steps().size()));

  for (const Timestep& step : schedule.steps()) {
    writer.write(static_cast<std::uint64_t>(step.moves()), count_bits);
    for (const ArcSend& send : step.sends()) {
      OCD_EXPECTS(send.arc >= 0 && send.arc < num_arcs);
      send.tokens.for_each([&](TokenId t) {
        OCD_EXPECTS(t < num_tokens);
        writer.write(static_cast<std::uint64_t>(send.arc), arc_bits);
        writer.write(static_cast<std::uint64_t>(t), token_bits);
      });
    }
  }
  return writer.finish();
}

Schedule decode_schedule(const std::vector<std::uint8_t>& bytes) {
  BitReader reader(bytes);
  if (reader.read_u32() != kMagic)
    throw Error("schedule decoding: bad magic");
  const auto num_arcs = static_cast<std::int32_t>(reader.read_u32());
  const auto num_tokens = static_cast<std::int32_t>(reader.read_u32());
  const auto num_steps = reader.read_u32();
  if (num_arcs < 0 || num_tokens < 0)
    throw Error("schedule decoding: negative dimensions");

  const int arc_bits = bits_for(static_cast<std::uint32_t>(num_arcs));
  const int token_bits = bits_for(static_cast<std::uint32_t>(num_tokens));
  const int count_bits = bits_for(static_cast<std::uint32_t>(
                             std::min<std::int64_t>(
                                 static_cast<std::int64_t>(num_arcs) *
                                     num_tokens,
                                 0x7fffffff))) +
                         1;

  Schedule schedule;
  for (std::uint32_t i = 0; i < num_steps; ++i) {
    const auto moves = reader.read(count_bits);
    Timestep step;
    for (std::uint64_t k = 0; k < moves; ++k) {
      const auto arc = static_cast<ArcId>(reader.read(arc_bits));
      const auto token = static_cast<TokenId>(reader.read(token_bits));
      if (arc >= num_arcs || token >= num_tokens)
        throw Error("schedule decoding: id out of range");
      step.add(arc, token, static_cast<std::size_t>(num_tokens));
    }
    schedule.append(std::move(step));
  }
  return schedule;
}

std::int64_t encoded_body_bits(const Schedule& schedule,
                               std::int32_t num_arcs,
                               std::int32_t num_tokens) {
  const int arc_bits = bits_for(static_cast<std::uint32_t>(num_arcs));
  const int token_bits = bits_for(static_cast<std::uint32_t>(num_tokens));
  const int count_bits = bits_for(static_cast<std::uint32_t>(
                             std::min<std::int64_t>(
                                 static_cast<std::int64_t>(num_arcs) *
                                     num_tokens,
                                 0x7fffffff))) +
                         1;
  return schedule.length() * count_bits +
         schedule.bandwidth() * (arc_bits + token_bits);
}

}  // namespace ocd::core
