#include "ocd/core/prune.hpp"

#include "ocd/core/validate.hpp"

namespace ocd::core {

namespace {

/// Pass 1: forward replay that drops every delivery of a token to a
/// vertex that already possesses it (including duplicates within the
/// same timestep, where the earliest listed send wins).
Schedule drop_duplicate_deliveries(const Instance& inst,
                                   const Schedule& schedule) {
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());

  std::vector<TokenSet> possession(n, TokenSet(universe));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);

  Schedule pruned;
  for (const Timestep& step : schedule.steps()) {
    // Tokens already granted to each vertex within this timestep.
    std::vector<TokenSet> granted(n, TokenSet(universe));
    Timestep kept;
    for (const ArcSend& send : step.sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      const auto to = static_cast<std::size_t>(arc.to);
      TokenSet useful = send.tokens;
      useful -= possession[to];
      useful -= granted[to];
      granted[to] |= useful;
      if (!useful.empty()) kept.add(send.arc, useful);
    }
    for (VertexId v = 0; v < inst.num_vertices(); ++v)
      possession[static_cast<std::size_t>(v)] |=
          granted[static_cast<std::size_t>(v)];
    pruned.append(std::move(kept));
  }
  return pruned;
}

/// Pass 2: backward sweep keeping only deliveries of tokens the receiver
/// eventually uses — tokens it wants, or tokens it forwards in a kept
/// later move (possession for a send at step i must exist at the start
/// of step i, so intra-step chaining is correctly disallowed).
Schedule drop_unused_deliveries(const Instance& inst,
                                const Schedule& schedule) {
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());

  std::vector<TokenSet> needed(n, TokenSet(universe));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    needed[static_cast<std::size_t>(v)] = inst.want(v);

  std::vector<Timestep> kept_steps(schedule.steps().size());
  for (std::size_t i = schedule.steps().size(); i-- > 0;) {
    const Timestep& step = schedule.steps()[i];
    // Requirements created by this step's kept sends apply to earlier
    // steps only; stage them and merge after the whole step is filtered.
    std::vector<TokenSet> staged(n, TokenSet(universe));
    Timestep kept;
    for (const ArcSend& send : step.sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      TokenSet useful = send.tokens & needed[static_cast<std::size_t>(arc.to)];
      if (useful.empty()) continue;
      // The sender needed to possess these tokens; if it does not hold
      // them initially, earlier deliveries to it must be retained.
      TokenSet from_network = useful - inst.have(arc.from);
      staged[static_cast<std::size_t>(arc.from)] |= from_network;
      kept.add(send.arc, useful);
    }
    for (std::size_t v = 0; v < n; ++v) needed[v] |= staged[v];
    kept_steps[i] = std::move(kept);
  }

  Schedule pruned;
  for (auto& step : kept_steps) pruned.append(std::move(step));
  return pruned;
}

}  // namespace

Schedule prune(const Instance& inst, const Schedule& schedule) {
  Schedule result = drop_duplicate_deliveries(inst, schedule);
  result = drop_unused_deliveries(inst, result);
  result.trim();
  return result;
}

std::int64_t pruned_bandwidth(const Instance& inst, const Schedule& schedule) {
  return prune(inst, schedule).bandwidth();
}

}  // namespace ocd::core
