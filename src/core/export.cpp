#include "ocd/core/export.hpp"

#include <ostream>

namespace ocd::core {

namespace {

void write_vertices(const Instance& inst, std::ostream& out,
                    const DotOptions& options) {
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    out << "  v" << v << " [label=\"" << v;
    if (options.mark_roles && !inst.have(v).empty())
      out << "\\nh=" << inst.have(v).count();
    if (options.mark_roles && !inst.want(v).empty())
      out << "\\nw=" << inst.want(v).count();
    out << '"';
    if (options.mark_roles) {
      if (!inst.have(v).empty()) out << ", shape=doublecircle";
      if (!inst.want(v).empty()) out << ", style=filled, fillcolor=lightgray";
    }
    out << "];\n";
  }
}

}  // namespace

void write_dot(const Instance& inst, std::ostream& out,
               const DotOptions& options) {
  out << "digraph ocd {\n  rankdir=LR;\n  node [shape=circle];\n";
  write_vertices(inst, out, options);
  for (const Arc& arc : inst.graph().arcs()) {
    out << "  v" << arc.from << " -> v" << arc.to;
    if (options.show_capacities) out << " [label=\"" << arc.capacity << "\"]";
    out << ";\n";
  }
  out << "}\n";
}

void write_step_dot(const Instance& inst, const Schedule& schedule,
                    std::size_t step_index, std::ostream& out,
                    const DotOptions& options) {
  OCD_EXPECTS(step_index < schedule.steps().size());
  const Timestep& step = schedule.steps()[step_index];

  out << "digraph ocd_step" << step_index
      << " {\n  rankdir=LR;\n  node [shape=circle];\n";
  write_vertices(inst, out, options);
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) {
    const Arc& arc = inst.graph().arc(a);
    const ArcSend* active = nullptr;
    for (const ArcSend& send : step.sends()) {
      if (send.arc == a && !send.tokens.empty()) {
        active = &send;
        break;
      }
    }
    out << "  v" << arc.from << " -> v" << arc.to;
    if (active != nullptr) {
      out << " [penwidth=2.5, color=black, label=\""
          << active->tokens.to_string() << '"' << "]";
    } else {
      out << " [color=gray70";
      if (options.show_capacities)
        out << ", label=\"" << arc.capacity << '"';
      out << "]";
    }
    out << ";\n";
  }
  out << "}\n";
}

void write_trace_csv(const Instance& inst, const Schedule& schedule,
                     std::ostream& out) {
  out << "step,from,to,token\n";
  for (std::size_t i = 0; i < schedule.steps().size(); ++i) {
    for (const ArcSend& send : schedule.steps()[i].sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      send.tokens.for_each([&](TokenId t) {
        out << i << ',' << arc.from << ',' << arc.to << ',' << t << '\n';
      });
    }
  }
}

}  // namespace ocd::core
