#include "ocd/core/validate.hpp"

#include <sstream>

namespace ocd::core {

namespace {

/// Shared replay loop.  on_violation is called with a description and
/// must either throw or record-and-stop; returns final possession.
template <typename ViolationFn>
std::optional<std::vector<std::vector<TokenSet>>> replay(
    const Instance& inst, const Schedule& schedule, bool keep_trace,
    ViolationFn&& on_violation) {
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());

  std::vector<std::vector<TokenSet>> trace;
  std::vector<TokenSet> possession(n, TokenSet(universe));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);
  if (keep_trace) trace.push_back(possession);

  for (std::size_t i = 0; i < schedule.steps().size(); ++i) {
    const Timestep& step = schedule.steps()[i];
    std::vector<TokenSet> next = possession;
    for (const ArcSend& send : step.sends()) {
      if (send.arc < 0 || send.arc >= inst.graph().num_arcs()) {
        std::ostringstream msg;
        msg << "timestep " << i << ": unknown arc id " << send.arc;
        on_violation(msg.str());
        return std::nullopt;
      }
      const Arc& arc = inst.graph().arc(send.arc);
      if (send.tokens.universe_size() != universe) {
        std::ostringstream msg;
        msg << "timestep " << i << ": token universe mismatch on arc ("
            << arc.from << "," << arc.to << ")";
        on_violation(msg.str());
        return std::nullopt;
      }
      if (send.tokens.count() > static_cast<std::size_t>(arc.capacity)) {
        std::ostringstream msg;
        msg << "timestep " << i << ": capacity exceeded on arc (" << arc.from
            << "," << arc.to << "): sent " << send.tokens.count()
            << " > c = " << arc.capacity;
        on_violation(msg.str());
        return std::nullopt;
      }
      if (!send.tokens.is_subset_of(
              possession[static_cast<std::size_t>(arc.from)])) {
        std::ostringstream msg;
        msg << "timestep " << i << ": possession violated on arc ("
            << arc.from << "," << arc.to << "): sender lacks "
            << (send.tokens - possession[static_cast<std::size_t>(arc.from)])
                   .to_string();
        on_violation(msg.str());
        return std::nullopt;
      }
      next[static_cast<std::size_t>(arc.to)] |= send.tokens;
    }
    possession = std::move(next);
    if (keep_trace) trace.push_back(possession);
  }

  if (!keep_trace) trace.push_back(std::move(possession));
  return trace;
}

}  // namespace

ValidationResult validate(const Instance& inst, const Schedule& schedule) {
  ValidationResult result;
  auto trace = replay(inst, schedule, /*keep_trace=*/false,
                      [&](const std::string& msg) { result.violation = msg; });
  if (!trace.has_value()) return result;
  result.valid = true;
  result.final_possession = std::move(trace->back());
  result.successful = true;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (!inst.want(v).is_subset_of(
            result.final_possession[static_cast<std::size_t>(v)])) {
      result.successful = false;
      break;
    }
  }
  return result;
}

std::vector<std::vector<TokenSet>> possession_trace(const Instance& inst,
                                                    const Schedule& schedule) {
  auto trace = replay(inst, schedule, /*keep_trace=*/true,
                      [](const std::string& msg) { throw Error(msg); });
  OCD_ASSERT(trace.has_value());
  return std::move(*trace);
}

bool is_successful(const Instance& inst, const Schedule& schedule) {
  return validate(inst, schedule).successful;
}

}  // namespace ocd::core
