#include "ocd/core/bounds.hpp"

#include <algorithm>
#include <queue>

#include "ocd/core/steiner.hpp"
#include "ocd/graph/algorithms.hpp"

namespace ocd::core {

namespace {

std::vector<TokenSet> initial_possession(const Instance& inst) {
  std::vector<TokenSet> p;
  p.reserve(static_cast<std::size_t>(inst.num_vertices()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v) p.push_back(inst.have(v));
  return p;
}

}  // namespace

std::int64_t bandwidth_lower_bound(const Instance& inst,
                                   std::span<const TokenSet> possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  std::int64_t total = 0;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    total += static_cast<std::int64_t>(
        (inst.want(v) - possession[static_cast<std::size_t>(v)]).count());
  }
  return total;
}

std::int64_t bandwidth_lower_bound(const Instance& inst) {
  const auto p = initial_possession(inst);
  return bandwidth_lower_bound(inst, p);
}

std::int64_t distance_lower_bound(const Instance& inst,
                                  std::span<const TokenSet> possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  std::int64_t bound = 0;
  for (TokenId t = 0; t < inst.num_tokens(); ++t) {
    // Multi-source BFS from all holders of t.
    std::vector<std::int32_t> dist(n, kUnreachable);
    std::queue<VertexId> frontier;
    bool outstanding = false;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (possession[static_cast<std::size_t>(v)].test(t)) {
        dist[static_cast<std::size_t>(v)] = 0;
        frontier.push(v);
      } else if (inst.want(v).test(t)) {
        outstanding = true;
      }
    }
    if (!outstanding) continue;
    if (frontier.empty())
      throw Error("distance_lower_bound: wanted token has no holder");
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      for (ArcId id : inst.graph().out_arcs(u)) {
        const VertexId w = inst.graph().arc(id).to;
        auto& dw = dist[static_cast<std::size_t>(w)];
        if (dw == kUnreachable) {
          dw = dist[static_cast<std::size_t>(u)] + 1;
          frontier.push(w);
        }
      }
    }
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (inst.want(v).test(t) &&
          !possession[static_cast<std::size_t>(v)].test(t)) {
        if (dist[static_cast<std::size_t>(v)] == kUnreachable)
          throw Error("distance_lower_bound: wanted token unreachable");
        bound = std::max<std::int64_t>(bound,
                                       dist[static_cast<std::size_t>(v)]);
      }
    }
  }
  return bound;
}

std::int64_t distance_lower_bound(const Instance& inst) {
  const auto p = initial_possession(inst);
  return distance_lower_bound(inst, p);
}

std::int64_t makespan_lower_bound(const Instance& inst,
                                  std::span<const TokenSet> possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  std::int64_t best = distance_lower_bound(inst, possession);

  // The paper's M_i(v) bound: a vertex still missing k tokens that all
  // lie outside its radius-i in-closure needs at least
  // i + ceil(k / in_capacity(v)) further timesteps, for every radius i.
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const TokenSet missing =
        inst.want(v) - possession[static_cast<std::size_t>(v)];
    if (missing.empty()) continue;
    const std::int64_t in_cap = inst.graph().in_capacity(v);
    if (in_cap == 0)
      throw Error("makespan_lower_bound: needy vertex has no in-capacity");

    // BFS distances from v following arcs backward: dist_to_v[u] = hops
    // from u to v.  Tokens held only at distance > i are outside the
    // radius-i closure.
    const auto dist_to_v = bfs_distances_to(inst.graph(), v);
    // For each missing token, the distance of its nearest holder.
    std::vector<std::int32_t> holder_dist;
    holder_dist.reserve(missing.count());
    missing.for_each([&](TokenId t) {
      std::int32_t nearest = kUnreachable;
      for (VertexId u = 0; u < inst.num_vertices(); ++u) {
        if (possession[static_cast<std::size_t>(u)].test(t))
          nearest = std::min(nearest, dist_to_v[static_cast<std::size_t>(u)]);
      }
      if (nearest == kUnreachable)
        throw Error("makespan_lower_bound: wanted token unreachable");
      holder_dist.push_back(nearest);
    });
    std::sort(holder_dist.begin(), holder_dist.end());

    // Sweep radii at holder-distance breakpoints: tokens with
    // holder_dist > i lie outside the closure.
    const auto k_total = static_cast<std::int64_t>(holder_dist.size());
    for (std::size_t idx = 0; idx <= holder_dist.size(); ++idx) {
      const std::int64_t radius = idx == 0 ? 0 : holder_dist[idx - 1];
      // Tokens strictly farther than `radius`.
      const auto outside =
          static_cast<std::int64_t>(holder_dist.end() -
                                    std::upper_bound(holder_dist.begin(),
                                                     holder_dist.end(),
                                                     radius));
      const std::int64_t need =
          radius + (outside + in_cap - 1) / in_cap;
      best = std::max(best, need);
      if (outside == 0) break;
    }
    // Radius 0 with everything outstanding: pure capacity bound.
    best = std::max(best, (k_total + in_cap - 1) / in_cap);
  }
  return best;
}

std::int64_t makespan_lower_bound(const Instance& inst) {
  const auto p = initial_possession(inst);
  return makespan_lower_bound(inst, p);
}

std::int64_t one_step_lookahead_bound(const Instance& inst,
                                      std::span<const TokenSet> possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  bool outstanding = false;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const TokenSet missing =
        inst.want(v) - possession[static_cast<std::size_t>(v)];
    if (missing.empty()) continue;
    outstanding = true;
    // Everything must be obtainable in one step: held by an in-neighbor,
    // and within aggregate in-capacity.
    if (static_cast<std::int64_t>(missing.count()) >
        inst.graph().in_capacity(v))
      return 2;
    TokenSet reachable(static_cast<std::size_t>(inst.num_tokens()));
    for (ArcId id : inst.graph().in_arcs(v)) {
      reachable |=
          possession[static_cast<std::size_t>(inst.graph().arc(id).from)];
    }
    if (!missing.is_subset_of(reachable)) return 2;
  }
  return outstanding ? 1 : 0;
}

std::int64_t bandwidth_upper_bound_serial_steiner(const Instance& inst) {
  std::int64_t total = 0;
  for (TokenId t = 0; t < inst.num_tokens(); ++t) {
    std::vector<VertexId> terminals;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (inst.want(v).test(t) && !inst.have(v).test(t)) terminals.push_back(v);
    }
    if (terminals.empty()) continue;
    const auto roots = inst.sources_of(t);
    if (roots.empty())
      throw Error("bandwidth_upper_bound_serial_steiner: no holder");
    total += steiner_tree(inst.graph(), roots, terminals).cost();
  }
  return total;
}

}  // namespace ocd::core
