#include "ocd/core/io.hpp"

#include <fstream>
#include <sstream>

#include "ocd/core/encoding.hpp"

namespace ocd::core {

namespace {

[[noreturn]] void parse_error(std::int64_t line, const std::string& message) {
  std::ostringstream out;
  out << "instance parse error at line " << line << ": " << message;
  throw Error(out.str());
}

}  // namespace

void save_instance(const Instance& inst, std::ostream& out) {
  out << "ocd-instance v1\n";
  out << "vertices " << inst.num_vertices() << " tokens " << inst.num_tokens()
      << '\n';
  for (const Arc& arc : inst.graph().arcs())
    out << "arc " << arc.from << ' ' << arc.to << ' ' << arc.capacity << '\n';
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (inst.have(v).empty()) continue;
    out << "have " << v;
    inst.have(v).for_each([&](TokenId t) { out << ' ' << t; });
    out << '\n';
  }
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (inst.want(v).empty()) continue;
    out << "want " << v;
    inst.want(v).for_each([&](TokenId t) { out << ' ' << t; });
    out << '\n';
  }
  for (const File& file : inst.files())
    out << "file " << file.first << ' ' << file.size << '\n';
  out << "end\n";
}

void save_instance_file(const Instance& inst, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  save_instance(inst, out);
  if (!out) throw Error("write failed: " + path);
}

Instance load_instance(std::istream& in) {
  std::string line;
  std::int64_t line_no = 0;

  auto next_line = [&](bool required) -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      const auto start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos) continue;
      if (line[start] == '#') continue;
      return true;
    }
    if (required) parse_error(line_no, "unexpected end of input");
    return false;
  };

  if (!next_line(true) || line.rfind("ocd-instance", 0) != 0)
    parse_error(line_no, "missing 'ocd-instance' header");

  next_line(true);
  std::int32_t n = -1;
  std::int32_t m = -1;
  {
    std::istringstream fields(line);
    std::string kw_vertices;
    std::string kw_tokens;
    if (!(fields >> kw_vertices >> n >> kw_tokens >> m) ||
        kw_vertices != "vertices" || kw_tokens != "tokens" || n < 0 || m < 0)
      parse_error(line_no, "expected 'vertices <n> tokens <m>'");
  }

  Digraph graph(n);
  struct TokenLine {
    bool is_have;
    VertexId vertex;
    std::vector<TokenId> tokens;
  };
  std::vector<TokenLine> token_lines;
  std::vector<File> files;

  bool saw_end = false;
  while (next_line(false)) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "end") {
      saw_end = true;
      break;
    }
    if (keyword == "arc") {
      VertexId from = -1;
      VertexId to = -1;
      std::int32_t capacity = 0;
      if (!(fields >> from >> to >> capacity))
        parse_error(line_no, "expected 'arc <from> <to> <capacity>'");
      if (from < 0 || from >= n || to < 0 || to >= n || from == to ||
          capacity < 1)
        parse_error(line_no, "arc endpoints/capacity out of range");
      if (graph.has_arc(from, to)) parse_error(line_no, "duplicate arc");
      graph.add_arc(from, to, capacity);
    } else if (keyword == "have" || keyword == "want") {
      TokenLine entry;
      entry.is_have = keyword == "have";
      if (!(fields >> entry.vertex))
        parse_error(line_no, "expected vertex id");
      if (entry.vertex < 0 || entry.vertex >= n)
        parse_error(line_no, "vertex id out of range");
      TokenId token = -1;
      while (fields >> token) {
        if (token < 0 || token >= m)
          parse_error(line_no, "token id out of range");
        entry.tokens.push_back(token);
      }
      token_lines.push_back(std::move(entry));
    } else if (keyword == "file") {
      File file;
      if (!(fields >> file.first >> file.size))
        parse_error(line_no, "expected 'file <first> <size>'");
      if (file.first < 0 || file.size < 1 || file.first + file.size > m)
        parse_error(line_no, "file range out of bounds");
      files.push_back(file);
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_end) parse_error(line_no, "missing 'end'");

  Instance inst(std::move(graph), m);
  for (const TokenLine& entry : token_lines) {
    for (TokenId t : entry.tokens) {
      if (entry.is_have) {
        inst.add_have(entry.vertex, t);
      } else {
        inst.add_want(entry.vertex, t);
      }
    }
  }
  for (const File& file : files) inst.add_file(file.first, file.size);
  inst.validate();
  return inst;
}

Instance load_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  return load_instance(in);
}

void save_schedule_file(const Schedule& schedule, std::int32_t num_arcs,
                        std::int32_t num_tokens, const std::string& path) {
  const auto bytes = encode_schedule(schedule, num_arcs, num_tokens);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("write failed: " + path);
}

Schedule load_schedule_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_schedule(bytes);
}

}  // namespace ocd::core
