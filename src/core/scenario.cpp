#include "ocd/core/scenario.hpp"

#include "ocd/topology/random_graph.hpp"

namespace ocd::core {

Instance single_source_all_receivers(Digraph graph, std::int32_t num_tokens,
                                     VertexId source) {
  OCD_EXPECTS(num_tokens >= 1);
  Instance inst(std::move(graph), num_tokens);
  OCD_EXPECTS(inst.graph().valid_vertex(source));
  const auto all = TokenSet::full(static_cast<std::size_t>(num_tokens));
  inst.set_have(source, all);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (v != source) inst.set_want(v, all);
  }
  inst.add_file(0, num_tokens);
  return inst;
}

DensityScenario single_source_receiver_density(Digraph graph,
                                               std::int32_t num_tokens,
                                               VertexId source,
                                               double threshold, Rng& rng) {
  OCD_EXPECTS(threshold >= 0.0 && threshold <= 1.0);
  Instance inst(std::move(graph), num_tokens);
  OCD_EXPECTS(inst.graph().valid_vertex(source));
  const auto all = TokenSet::full(static_cast<std::size_t>(num_tokens));
  inst.set_have(source, all);
  std::int32_t receivers = 0;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (v == source) continue;
    if (rng.uniform_real() < threshold) {
      inst.set_want(v, all);
      ++receivers;
    }
  }
  inst.add_file(0, num_tokens);
  return DensityScenario{std::move(inst), receivers};
}

namespace {

/// Partitions vertices other than the excluded one into `groups` nearly
/// equal contiguous groups; returns group index per vertex (-1 for the
/// excluded vertex).
std::vector<std::int32_t> partition_vertices(std::int32_t n,
                                             std::int32_t groups,
                                             VertexId excluded) {
  std::vector<std::int32_t> group(static_cast<std::size_t>(n), -1);
  std::int32_t members = excluded >= 0 ? n - 1 : n;
  std::int32_t assigned = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v == excluded) continue;
    group[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>((static_cast<std::int64_t>(assigned) *
                                   groups) /
                                  members);
    ++assigned;
  }
  return group;
}

}  // namespace

Instance subdivided_files(Digraph graph, std::int32_t total_tokens,
                          std::int32_t num_files, VertexId source) {
  OCD_EXPECTS(num_files >= 1 && total_tokens >= num_files);
  OCD_EXPECTS(total_tokens % num_files == 0);
  Instance inst(std::move(graph), total_tokens);
  OCD_EXPECTS(inst.graph().valid_vertex(source));
  OCD_EXPECTS(inst.num_vertices() >= num_files + 1);

  inst.set_have(source, TokenSet::full(static_cast<std::size_t>(total_tokens)));

  const std::int32_t file_size = total_tokens / num_files;
  std::vector<TokenSet> file_tokens;
  file_tokens.reserve(static_cast<std::size_t>(num_files));
  for (std::int32_t f = 0; f < num_files; ++f) {
    inst.add_file(f * file_size, file_size);
    file_tokens.push_back(
        inst.files().back().tokens(static_cast<std::size_t>(total_tokens)));
  }

  const auto group = partition_vertices(inst.num_vertices(), num_files, source);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const std::int32_t f = group[static_cast<std::size_t>(v)];
    if (f >= 0) inst.set_want(v, file_tokens[static_cast<std::size_t>(f)]);
  }
  return inst;
}

Instance subdivided_files_random_senders(Digraph graph,
                                         std::int32_t total_tokens,
                                         std::int32_t num_files, Rng& rng) {
  OCD_EXPECTS(num_files >= 1 && total_tokens >= num_files);
  OCD_EXPECTS(total_tokens % num_files == 0);
  Instance inst(std::move(graph), total_tokens);
  OCD_EXPECTS(inst.num_vertices() >= num_files + 1);

  const std::int32_t file_size = total_tokens / num_files;
  std::vector<TokenSet> file_tokens;
  for (std::int32_t f = 0; f < num_files; ++f) {
    inst.add_file(f * file_size, file_size);
    file_tokens.push_back(
        inst.files().back().tokens(static_cast<std::size_t>(total_tokens)));
  }

  // Wants first (partition over all vertices), then pick each file's
  // sender among vertices that do not want it.
  const auto group = partition_vertices(inst.num_vertices(), num_files, -1);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const std::int32_t f = group[static_cast<std::size_t>(v)];
    inst.set_want(v, file_tokens[static_cast<std::size_t>(f)]);
  }
  for (std::int32_t f = 0; f < num_files; ++f) {
    std::vector<VertexId> candidates;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (group[static_cast<std::size_t>(v)] != f) candidates.push_back(v);
    }
    VertexId sender;
    if (candidates.empty()) {
      // Single-file degenerate case: everyone wants the file, so demote
      // a random vertex to pure seeder (matching Figure 5's convention
      // that the source wants nothing).
      OCD_ASSERT(num_files == 1);
      sender = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(inst.num_vertices())));
      inst.set_want(sender,
                    inst.want(sender) - file_tokens[static_cast<std::size_t>(f)]);
    } else {
      sender =
          candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
    }
    inst.set_have(sender,
                  inst.have(sender) | file_tokens[static_cast<std::size_t>(f)]);
  }
  return inst;
}

Instance figure1_instance() {
  // Vertices: 0 = s, 1..4 = w1..w4 (receivers), 5 = r1, 6 = r2 (relays).
  // Bandwidth-optimal tree: s->w1->w2->{w3,w4}  (4 moves, 3 steps).
  // Fast relay paths: s->r1->w3 and s->r2->w4 enable a 2-step schedule
  // at the cost of 2 relay deliveries (6 moves total).
  Digraph g(7);
  const VertexId s = 0, w1 = 1, w2 = 2, w3 = 3, w4 = 4, r1 = 5, r2 = 6;
  g.add_arc(s, w1, 1);
  g.add_arc(w1, w2, 1);
  g.add_arc(w2, w3, 1);
  g.add_arc(w2, w4, 1);
  g.add_arc(s, r1, 1);
  g.add_arc(r1, w3, 1);
  g.add_arc(s, r2, 1);
  g.add_arc(r2, w4, 1);

  Instance inst(std::move(g), 1);
  inst.add_have(s, 0);
  for (VertexId v : {w1, w2, w3, w4}) inst.add_want(v, 0);
  inst.add_file(0, 1);
  return inst;
}

Instance adversarial_path(std::int32_t path_length, std::int32_t num_tokens,
                          TokenId wanted) {
  OCD_EXPECTS(path_length >= 1);
  OCD_EXPECTS(num_tokens >= 1);
  OCD_EXPECTS(wanted >= 0 && wanted < num_tokens);
  Digraph g(path_length + 1);
  for (VertexId v = 0; v < path_length; ++v) {
    g.add_arc(v, v + 1, 1);
    g.add_arc(v + 1, v, 1);
  }
  Instance inst(std::move(g), num_tokens);
  inst.set_have(0, TokenSet::full(static_cast<std::size_t>(num_tokens)));
  inst.add_want(path_length, wanted);
  return inst;
}

Instance random_small_instance(std::int32_t n, std::int32_t m,
                               double want_probability, Rng& rng) {
  OCD_EXPECTS(n >= 2 && m >= 1);
  topology::RandomGraphOptions options;
  options.edge_probability = 0.6;
  options.capacities = topology::CapacityRange{1, 2};
  Digraph g = topology::random_overlay(n, options, rng);
  Instance inst(std::move(g), m);
  for (TokenId t = 0; t < m; ++t) {
    const auto holder = static_cast<VertexId>(rng.below(
        static_cast<std::uint64_t>(n)));
    inst.add_have(holder, t);
    bool anyone = false;
    for (VertexId v = 0; v < n; ++v) {
      if (v != holder && rng.chance(want_probability)) {
        inst.add_want(v, t);
        anyone = true;
      }
    }
    if (!anyone) {
      // Guarantee at least one wanter so the instance is interesting.
      VertexId v = static_cast<VertexId>(rng.below(
          static_cast<std::uint64_t>(n)));
      if (v == holder) v = (v + 1) % n;
      inst.add_want(v, t);
    }
  }
  return inst;
}

}  // namespace ocd::core
