#include "ocd/core/schedule.hpp"

#include <algorithm>

namespace ocd::core {

void Timestep::add(ArcId arc, const TokenSet& tokens) {
  OCD_EXPECTS(arc >= 0);
  if (tokens.empty()) return;
  for (ArcSend& send : sends_) {
    if (send.arc == arc) {
      send.tokens |= tokens;
      return;
    }
  }
  sends_.push_back(ArcSend{arc, tokens});
}

void Timestep::add(ArcId arc, TokenId token, std::size_t universe) {
  OCD_EXPECTS(arc >= 0);
  for (ArcSend& send : sends_) {
    if (send.arc == arc) {
      send.tokens.set(token);
      return;
    }
  }
  TokenSet s(universe);
  s.set(token);
  sends_.push_back(ArcSend{arc, std::move(s)});
}

std::int64_t Timestep::moves() const noexcept {
  std::int64_t total = 0;
  for (const ArcSend& send : sends_)
    total += static_cast<std::int64_t>(send.tokens.count());
  return total;
}

bool Timestep::empty() const noexcept {
  return std::all_of(sends_.begin(), sends_.end(),
                     [](const ArcSend& s) { return s.tokens.empty(); });
}

void Timestep::compact() {
  std::erase_if(sends_, [](const ArcSend& s) { return s.tokens.empty(); });
}

std::int64_t Schedule::bandwidth() const noexcept {
  std::int64_t total = 0;
  for (const Timestep& step : steps_) total += step.moves();
  return total;
}

void Schedule::trim() {
  for (Timestep& step : steps_) step.compact();
  while (!steps_.empty() && steps_.back().empty()) steps_.pop_back();
}

}  // namespace ocd::core
