#include "ocd/core/steiner.hpp"

#include <algorithm>
#include <queue>

#include "ocd/graph/algorithms.hpp"

namespace ocd::core {

std::int32_t SteinerTree::height() const {
  std::int32_t h = 0;
  for (std::int32_t d : depth) h = std::max(h, d + 1);
  return h;
}

SteinerTree steiner_tree(const Digraph& graph,
                         const std::vector<VertexId>& roots,
                         const std::vector<VertexId>& terminals) {
  OCD_EXPECTS(!roots.empty());
  const auto n = static_cast<std::size_t>(graph.num_vertices());

  // in_tree[v]: v is reached by the growing arborescence.
  std::vector<bool> in_tree(n, false);
  std::vector<std::int32_t> tree_depth(n, 0);
  for (VertexId r : roots) in_tree[static_cast<std::size_t>(r)] = true;

  std::vector<bool> is_terminal(n, false);
  std::size_t remaining = 0;
  for (VertexId t : terminals) {
    if (!in_tree[static_cast<std::size_t>(t)] &&
        !is_terminal[static_cast<std::size_t>(t)]) {
      is_terminal[static_cast<std::size_t>(t)] = true;
      ++remaining;
    }
  }

  SteinerTree result;
  while (remaining > 0) {
    // Multi-source BFS from the current tree; stop at the first terminal
    // reached, then splice its shortest path into the tree.
    std::vector<ArcId> parent_arc(n, -1);
    std::vector<std::int32_t> dist(n, kUnreachable);
    std::queue<VertexId> frontier;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = 0;
        frontier.push(v);
      }
    }
    VertexId found = -1;
    while (!frontier.empty() && found < 0) {
      const VertexId u = frontier.front();
      frontier.pop();
      for (ArcId id : graph.out_arcs(u)) {
        const VertexId w = graph.arc(id).to;
        auto& dw = dist[static_cast<std::size_t>(w)];
        if (dw != kUnreachable) continue;
        dw = dist[static_cast<std::size_t>(u)] + 1;
        parent_arc[static_cast<std::size_t>(w)] = id;
        if (is_terminal[static_cast<std::size_t>(w)]) {
          found = w;
          break;
        }
        frontier.push(w);
      }
    }
    if (found < 0) throw Error("steiner_tree: terminal unreachable from roots");

    // Walk the path back to the tree, collecting arcs root-to-terminal.
    std::vector<ArcId> path;
    for (VertexId v = found; !in_tree[static_cast<std::size_t>(v)];) {
      const ArcId id = parent_arc[static_cast<std::size_t>(v)];
      OCD_ASSERT(id >= 0);
      path.push_back(id);
      v = graph.arc(id).from;
    }
    std::reverse(path.begin(), path.end());
    for (ArcId id : path) {
      const Arc& arc = graph.arc(id);
      const auto tail_depth = tree_depth[static_cast<std::size_t>(arc.from)];
      result.arcs.push_back(id);
      result.depth.push_back(tail_depth);
      in_tree[static_cast<std::size_t>(arc.to)] = true;
      tree_depth[static_cast<std::size_t>(arc.to)] = tail_depth + 1;
      if (is_terminal[static_cast<std::size_t>(arc.to)]) {
        is_terminal[static_cast<std::size_t>(arc.to)] = false;
        --remaining;
      }
    }
  }
  return result;
}

Schedule serial_steiner_schedule(const Instance& inst) {
  Schedule schedule;
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  for (TokenId t = 0; t < inst.num_tokens(); ++t) {
    std::vector<VertexId> terminals;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (inst.want(v).test(t) && !inst.have(v).test(t)) terminals.push_back(v);
    }
    if (terminals.empty()) continue;
    const auto roots = inst.sources_of(t);
    if (roots.empty())
      throw Error("serial_steiner_schedule: token has no holder");
    const SteinerTree tree = steiner_tree(inst.graph(), roots, terminals);

    // One timestep per tree level; arcs at equal depth run in parallel
    // (each carries a single token, so unit capacity suffices).
    const std::int32_t height = tree.height();
    std::vector<Timestep> levels(static_cast<std::size_t>(height));
    for (std::size_t k = 0; k < tree.arcs.size(); ++k) {
      levels[static_cast<std::size_t>(tree.depth[k])].add(tree.arcs[k], t,
                                                          universe);
    }
    for (auto& level : levels) schedule.append(std::move(level));
  }
  return schedule;
}

Schedule steiner_packing_schedule(const Instance& inst) {
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  const auto n = static_cast<std::size_t>(inst.num_vertices());

  // Pending tree arcs per token.
  struct PendingArc {
    TokenId token;
    ArcId arc;
    bool done = false;
  };
  std::vector<PendingArc> pending;
  for (TokenId t = 0; t < inst.num_tokens(); ++t) {
    std::vector<VertexId> terminals;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      if (inst.want(v).test(t) && !inst.have(v).test(t)) terminals.push_back(v);
    }
    if (terminals.empty()) continue;
    const auto roots = inst.sources_of(t);
    if (roots.empty())
      throw Error("steiner_packing_schedule: token has no holder");
    const SteinerTree tree = steiner_tree(inst.graph(), roots, terminals);
    for (ArcId arc : tree.arcs) pending.push_back(PendingArc{t, arc, false});
  }

  std::vector<TokenSet> possession(n, TokenSet(universe));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);

  Schedule schedule;
  std::size_t remaining = pending.size();
  std::vector<std::int32_t> capacity_left(
      static_cast<std::size_t>(inst.graph().num_arcs()));
  while (remaining > 0) {
    for (ArcId a = 0; a < inst.graph().num_arcs(); ++a)
      capacity_left[static_cast<std::size_t>(a)] = inst.graph().arc(a).capacity;
    Timestep step;
    std::vector<TokenSet> next = possession;
    bool progress = false;
    for (PendingArc& move : pending) {
      if (move.done) continue;
      if (capacity_left[static_cast<std::size_t>(move.arc)] <= 0) continue;
      const Arc& arc = inst.graph().arc(move.arc);
      if (!possession[static_cast<std::size_t>(arc.from)].test(move.token))
        continue;  // tail not yet reached this step
      step.add(move.arc, move.token, universe);
      --capacity_left[static_cast<std::size_t>(move.arc)];
      next[static_cast<std::size_t>(arc.to)].set(move.token);
      move.done = true;
      --remaining;
      progress = true;
    }
    OCD_ASSERT_MSG(progress, "steiner packing stalled (broken tree)");
    possession = std::move(next);
    schedule.append(std::move(step));
  }
  return schedule;
}

}  // namespace ocd::core
