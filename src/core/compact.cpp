#include "ocd/core/compact.hpp"

#include "ocd/core/prune.hpp"
#include "ocd/core/validate.hpp"

namespace ocd::core {

Schedule compact_schedule(const Instance& inst, const Schedule& schedule) {
  // Flatten to single moves in (original step, listing order) — the
  // earliest-original-first priority guarantees no move is placed later
  // than its original step, so the result is never longer.
  struct Move {
    ArcId arc;
    TokenId token;
    bool placed = false;
  };
  std::vector<Move> moves;
  for (const Timestep& step : schedule.steps()) {
    for (const ArcSend& send : step.sends()) {
      send.tokens.for_each(
          [&](TokenId t) { moves.push_back(Move{send.arc, t, false}); });
    }
  }

  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  std::vector<TokenSet> possession(n, TokenSet(universe));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);

  Schedule result;
  std::size_t remaining = moves.size();
  std::vector<std::int32_t> capacity_left(
      static_cast<std::size_t>(inst.graph().num_arcs()));

  while (remaining > 0) {
    for (ArcId a = 0; a < inst.graph().num_arcs(); ++a)
      capacity_left[static_cast<std::size_t>(a)] = inst.graph().arc(a).capacity;

    Timestep step;
    std::vector<TokenSet> next = possession;
    bool progress = false;
    for (Move& move : moves) {
      if (move.placed) continue;
      const Arc& arc = inst.graph().arc(move.arc);
      if (!possession[static_cast<std::size_t>(arc.from)].test(move.token))
        continue;
      // An identical (arc, token) transfer already in this step makes
      // this move redundant — fold it in without spending capacity.
      bool already = false;
      for (const ArcSend& send : step.sends()) {
        if (send.arc == move.arc && send.tokens.test(move.token)) {
          already = true;
          break;
        }
      }
      if (already) {
        move.placed = true;
        --remaining;
        progress = true;
        continue;
      }
      if (capacity_left[static_cast<std::size_t>(move.arc)] <= 0) continue;
      step.add(move.arc, move.token, universe);
      --capacity_left[static_cast<std::size_t>(move.arc)];
      next[static_cast<std::size_t>(arc.to)].set(move.token);
      move.placed = true;
      --remaining;
      progress = true;
    }
    OCD_ASSERT_MSG(progress,
                   "compact_schedule: input schedule must be valid");
    possession = std::move(next);
    result.append(std::move(step));
  }
  result.trim();
  OCD_ENSURES(result.length() <= schedule.length() ||
              schedule.bandwidth() == 0);
  return result;
}

Schedule optimize_schedule(const Instance& inst, const Schedule& schedule) {
  return compact_schedule(inst, prune(inst, schedule));
}

}  // namespace ocd::core
