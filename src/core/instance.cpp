#include "ocd/core/instance.hpp"

#include <sstream>

#include "ocd/graph/algorithms.hpp"

namespace ocd::core {

TokenSet File::tokens(std::size_t universe) const {
  TokenSet s(universe);
  for (std::int32_t i = 0; i < size; ++i) s.set(first + i);
  return s;
}

Instance::Instance(Digraph graph, std::int32_t num_tokens)
    : graph_(std::move(graph)), num_tokens_(num_tokens) {
  OCD_EXPECTS(num_tokens >= 0);
  // Build the CSR adjacency eagerly: instances are constructed before
  // any sweep thread runs, and Instance exposes no mutable graph
  // access, so the simulator hot path always reads the flat arrays.
  graph_.finalize();
  const auto n = static_cast<std::size_t>(graph_.num_vertices());
  have_.assign(n, TokenSet(static_cast<std::size_t>(num_tokens_)));
  want_.assign(n, TokenSet(static_cast<std::size_t>(num_tokens_)));
}

const TokenSet& Instance::have(VertexId v) const {
  OCD_EXPECTS(graph_.valid_vertex(v));
  return have_[static_cast<std::size_t>(v)];
}

const TokenSet& Instance::want(VertexId v) const {
  OCD_EXPECTS(graph_.valid_vertex(v));
  return want_[static_cast<std::size_t>(v)];
}

void Instance::add_have(VertexId v, TokenId t) {
  OCD_EXPECTS(graph_.valid_vertex(v));
  have_[static_cast<std::size_t>(v)].set(t);
}

void Instance::add_want(VertexId v, TokenId t) {
  OCD_EXPECTS(graph_.valid_vertex(v));
  want_[static_cast<std::size_t>(v)].set(t);
}

void Instance::set_have(VertexId v, TokenSet tokens) {
  OCD_EXPECTS(graph_.valid_vertex(v));
  OCD_EXPECTS(tokens.universe_size() ==
              static_cast<std::size_t>(num_tokens_));
  have_[static_cast<std::size_t>(v)] = std::move(tokens);
}

void Instance::set_want(VertexId v, TokenSet tokens) {
  OCD_EXPECTS(graph_.valid_vertex(v));
  OCD_EXPECTS(tokens.universe_size() ==
              static_cast<std::size_t>(num_tokens_));
  want_[static_cast<std::size_t>(v)] = std::move(tokens);
}

std::int32_t Instance::add_file(TokenId first, std::int32_t size) {
  OCD_EXPECTS(first >= 0 && size >= 1);
  OCD_EXPECTS(first + size <= num_tokens_);
  files_.push_back(File{first, size});
  return static_cast<std::int32_t>(files_.size()) - 1;
}

bool Instance::is_trivially_satisfied() const {
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (!want(v).is_subset_of(have(v))) return false;
  }
  return true;
}

bool Instance::is_satisfiable() const {
  // For each token, flood reachability from the union of its sources;
  // every wanter must be reached.
  for (TokenId t = 0; t < num_tokens_; ++t) {
    const auto sources = sources_of(t);
    std::vector<bool> wanted(static_cast<std::size_t>(num_vertices()), false);
    bool any_wanted = false;
    for (VertexId v = 0; v < num_vertices(); ++v) {
      if (want(v).test(t) && !have(v).test(t)) {
        wanted[static_cast<std::size_t>(v)] = true;
        any_wanted = true;
      }
    }
    if (!any_wanted) continue;
    if (sources.empty()) return false;
    // Multi-source BFS.
    std::vector<bool> reached(static_cast<std::size_t>(num_vertices()), false);
    std::vector<VertexId> stack = sources;
    for (VertexId s : sources) reached[static_cast<std::size_t>(s)] = true;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (ArcId id : graph_.out_arcs(u)) {
        const VertexId w = graph_.arc(id).to;
        if (!reached[static_cast<std::size_t>(w)]) {
          reached[static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
    for (VertexId v = 0; v < num_vertices(); ++v) {
      if (wanted[static_cast<std::size_t>(v)] &&
          !reached[static_cast<std::size_t>(v)])
        return false;
    }
  }
  return true;
}

std::vector<VertexId> Instance::sources_of(TokenId t) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (have(v).test(t)) out.push_back(v);
  }
  return out;
}

std::int64_t Instance::total_outstanding() const {
  std::int64_t total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    total += static_cast<std::int64_t>((want(v) - have(v)).count());
  }
  return total;
}

void Instance::validate() const {
  OCD_ASSERT(have_.size() == static_cast<std::size_t>(num_vertices()));
  OCD_ASSERT(want_.size() == static_cast<std::size_t>(num_vertices()));
  for (VertexId v = 0; v < num_vertices(); ++v) {
    OCD_ASSERT(have(v).universe_size() ==
               static_cast<std::size_t>(num_tokens_));
    OCD_ASSERT(want(v).universe_size() ==
               static_cast<std::size_t>(num_tokens_));
  }
  for (const File& f : files_) {
    OCD_ASSERT(f.first >= 0 && f.size >= 1 &&
               f.first + f.size <= num_tokens_);
  }
}

std::string Instance::summary() const {
  std::ostringstream out;
  out << "Instance{n=" << num_vertices() << ", arcs=" << graph_.num_arcs()
      << ", tokens=" << num_tokens_ << ", files=" << files_.size()
      << ", outstanding=" << total_outstanding() << '}';
  return out.str();
}

}  // namespace ocd::core
