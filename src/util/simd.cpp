// SIMD dispatch resolution plus the scalar reference kernels.
//
// The scalar table is the semantics every vectorized level must match
// bit-for-bit; it is also the fallback for non-x86 builds and the
// OCD_SIMD=scalar escape hatch.
#include "ocd/util/simd.hpp"

#include <cstdlib>
#include <mutex>
#include <string>

#include "simd_internal.hpp"

namespace ocd::util::simd {
namespace {

// ---- scalar reference kernels --------------------------------------

std::size_t scalar_count(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  return total;
}

std::size_t scalar_count_intersection(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

bool scalar_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool scalar_intersects(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

std::size_t scalar_first_and_word(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t from,
                                  std::size_t n) {
  for (std::size_t i = from; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

std::size_t scalar_fresh_union_apply(std::uint64_t* dst,
                                     const std::uint64_t* src,
                                     std::uint64_t* fresh, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

std::size_t scalar_fresh_union_apply_merge(std::uint64_t* dst,
                                           std::uint64_t* uni,
                                           const std::uint64_t* src,
                                           std::uint64_t* fresh,
                                           std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    uni[i] |= f;
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

constexpr Kernels kScalarKernels = {
    scalar_count,
    scalar_count_intersection,
    scalar_is_subset,
    scalar_intersects,
    scalar_first_and_word,
    scalar_fresh_union_apply,
    scalar_fresh_union_apply_merge,
};

// ---- probe + resolution --------------------------------------------

/// cpuid-probed AND compiled-in.  A level is usable only when both the
/// host CPU advertises the ISA and the matching TU was built with it.
Level probe_max_level() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq") &&
      detail::avx512_kernels() != nullptr) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && detail::avx2_kernels() != nullptr)
    return Level::kAvx2;
#endif
  return Level::kScalar;
}

const Kernels* table_for(Level level) noexcept {
  switch (level) {
    case Level::kAvx512:
      return detail::avx512_kernels();
    case Level::kAvx2:
      return detail::avx2_kernels();
    case Level::kScalar:
      break;
  }
  return &kScalarKernels;
}

std::mutex g_resolve_mutex;
// -1 = no override; otherwise a Level already validated by
// set_simd_level.  Guarded by g_resolve_mutex for writes.
std::atomic<int> g_override{-1};
std::atomic<int> g_active{-1};

void require_supported(Level level, const std::string& origin) {
  if (level > max_supported_level()) {
    throw Error(origin + " requests " + level_name(level) +
                ", but this host supports at most " +
                level_name(max_supported_level()) +
                " (cpu features and build flags both count)");
  }
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

Level max_supported_level() noexcept {
  static const Level level = probe_max_level();
  return level;
}

Level parse_level_value(const char* text) {
  const std::string value = text == nullptr ? "" : text;
  if (value == "scalar") return Level::kScalar;
  if (value == "avx2") return Level::kAvx2;
  if (value == "avx512") return Level::kAvx512;
  throw Error("OCD_SIMD must be one of scalar/avx2/avx512, got '" + value +
              "'");
}

Level active_level() {
  kernels();  // force resolution
  return static_cast<Level>(g_active.load(std::memory_order_acquire));
}

void set_simd_level(Level level) {
  require_supported(level, "set_simd_level");
  const std::lock_guard<std::mutex> lock(g_resolve_mutex);
  g_override.store(static_cast<int>(level), std::memory_order_release);
  g_active.store(static_cast<int>(level), std::memory_order_release);
  detail::g_kernels.store(table_for(level), std::memory_order_release);
}

void clear_simd_level() {
  const std::lock_guard<std::mutex> lock(g_resolve_mutex);
  g_override.store(-1, std::memory_order_release);
  detail::g_kernels.store(nullptr, std::memory_order_release);
  g_active.store(-1, std::memory_order_release);
}

namespace detail {

std::atomic<const Kernels*> g_kernels{nullptr};

const Kernels* resolve_kernels() {
  const std::lock_guard<std::mutex> lock(g_resolve_mutex);
  if (const Kernels* k = g_kernels.load(std::memory_order_acquire)) return k;
  Level level;
  const int override_level = g_override.load(std::memory_order_acquire);
  if (override_level >= 0) {
    level = static_cast<Level>(override_level);
  } else if (const char* env = std::getenv("OCD_SIMD")) {
    level = parse_level_value(env);
    require_supported(level, "OCD_SIMD");
  } else {
    level = max_supported_level();
  }
  const Kernels* table = table_for(level);
  g_active.store(static_cast<int>(level), std::memory_order_release);
  g_kernels.store(table, std::memory_order_release);
  return table;
}

}  // namespace detail

}  // namespace ocd::util::simd
