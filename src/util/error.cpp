#include "ocd/util/error.hpp"

#include <sstream>

namespace ocd {

namespace {
std::string format_message(const char* kind, const char* expr,
                           const char* file, int line,
                           const std::string& msg) {
  std::ostringstream out;
  out << file << ':' << line << ": " << kind << " violated: " << expr;
  if (!msg.empty()) out << " (" << msg << ')';
  return out.str();
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg)
    : Error(format_message(kind, expr, file, line, msg)), expr_(expr) {}

namespace detail {
void throw_contract_violation(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  throw ContractViolation(kind, expr, file, line, msg);
}
}  // namespace detail

}  // namespace ocd
