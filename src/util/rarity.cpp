#include "ocd/util/rarity.hpp"

#include <algorithm>
#include <numeric>

namespace ocd {

void RarityRanker::assign(std::vector<TokenId> order) {
  order_ = std::move(order);
  rank_.assign(order_.size(), -1);
  for (std::size_t r = 0; r < order_.size(); ++r) {
    const TokenId t = order_[r];
    OCD_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < order_.size());
    OCD_EXPECTS(rank_[static_cast<std::size_t>(t)] < 0);  // a permutation
    rank_[static_cast<std::size_t>(t)] = static_cast<TokenId>(r);
  }
}

void RarityRanker::assign_by_rarity(std::span<const std::int32_t> holders,
                                    Rng* rng) {
  std::vector<TokenId> order(holders.size());
  std::iota(order.begin(), order.end(), 0);
  if (rng != nullptr) rng->shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](TokenId a, TokenId b) {
    return holders[static_cast<std::size_t>(a)] <
           holders[static_cast<std::size_t>(b)];
  });
  assign(std::move(order));
}

void RarityRanker::assign_by_need_then_rarity(
    std::span<const std::int32_t> holders, std::span<const std::int32_t> need,
    Rng* rng) {
  OCD_EXPECTS(holders.size() == need.size());
  std::vector<TokenId> order(holders.size());
  std::iota(order.begin(), order.end(), 0);
  if (rng != nullptr) rng->shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](TokenId a, TokenId b) {
    const bool needed_a = need[static_cast<std::size_t>(a)] > 0;
    const bool needed_b = need[static_cast<std::size_t>(b)] > 0;
    if (needed_a != needed_b) return needed_a;
    return holders[static_cast<std::size_t>(a)] <
           holders[static_cast<std::size_t>(b)];
  });
  assign(std::move(order));
}

TokenSet RarityRanker::to_ranks(const TokenSet& tokens) const {
  OCD_EXPECTS(tokens.universe_size() == order_.size());
  TokenSet ranked(order_.size());
  tokens.for_each([&](TokenId t) {
    ranked.set(rank_[static_cast<std::size_t>(t)]);
  });
  return ranked;
}

TokenSet RarityRanker::to_tokens(const TokenSet& ranked) const {
  OCD_EXPECTS(ranked.universe_size() == order_.size());
  TokenSet tokens(order_.size());
  ranked.for_each([&](TokenId r) {
    tokens.set(order_[static_cast<std::size_t>(r)]);
  });
  return tokens;
}

TokenId rarest_in_intersection(const RarityRanker& ranker,
                               const TokenSet& ranked_a,
                               const TokenSet& ranked_b) {
  const TokenId rank = TokenSet::first_in_intersection(ranked_a, ranked_b);
  return rank < 0 ? rank : ranker.token_at(rank);
}

}  // namespace ocd
