#include "ocd/util/rarity.hpp"

#include <algorithm>
#include <numeric>

namespace ocd {

void RarityRanker::assign(std::vector<TokenId> order) {
  order_ = std::move(order);
  rebuild_rank();
}

void RarityRanker::rebuild_rank() {
  rank_.assign(order_.size(), -1);
  for (std::size_t r = 0; r < order_.size(); ++r) {
    const TokenId t = order_[r];
    OCD_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < order_.size());
    OCD_EXPECTS(rank_[static_cast<std::size_t>(t)] < 0);  // a permutation
    rank_[static_cast<std::size_t>(t)] = static_cast<TokenId>(r);
  }
}

void RarityRanker::sort_by_keys() {
  // keys_[i] = (sort key << 32) | i over the pre-sort order_.  Since the
  // low 32 bits make every key unique and preserve position order,
  // sorting the packed keys in place reproduces exactly what a
  // stable_sort by the high bits would produce — without stable_sort's
  // temporary buffer.
  std::sort(keys_.begin(), keys_.end());
  scratch_order_ = order_;  // same size: copy reuses capacity
  for (std::size_t i = 0; i < keys_.size(); ++i)
    order_[i] = scratch_order_[static_cast<std::size_t>(
        keys_[i] & 0xffffffffULL)];
  rebuild_rank();
}

void RarityRanker::assign_by_rarity(std::span<const std::int32_t> holders,
                                    Rng* rng) {
  order_.resize(holders.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (rng != nullptr) rng->shuffle(order_);
  keys_.resize(holders.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto h = static_cast<std::uint64_t>(
        holders[static_cast<std::size_t>(order_[i])]);
    keys_[i] = (h << 32) | static_cast<std::uint64_t>(i);
  }
  sort_by_keys();
}

void RarityRanker::assign_by_need_then_rarity(
    std::span<const std::int32_t> holders, std::span<const std::int32_t> need,
    Rng* rng) {
  OCD_EXPECTS(holders.size() == need.size());
  order_.resize(holders.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (rng != nullptr) rng->shuffle(order_);
  keys_.resize(holders.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto t = static_cast<std::size_t>(order_[i]);
    const std::uint64_t unneeded = need[t] > 0 ? 0 : 1;
    const auto h = static_cast<std::uint64_t>(holders[t]);
    keys_[i] = (unneeded << 63) | (h << 32) | static_cast<std::uint64_t>(i);
  }
  sort_by_keys();
}

TokenSet RarityRanker::to_ranks(TokenSetView tokens) const {
  TokenSet ranked(order_.size());
  to_ranks_into(tokens, ranked);
  return ranked;
}

TokenSet RarityRanker::to_tokens(TokenSetView ranked) const {
  TokenSet tokens(order_.size());
  to_tokens_into(ranked, tokens);
  return tokens;
}

void RarityRanker::to_ranks_into(TokenSetView tokens,
                                 MutableTokenSetView out) const {
  OCD_EXPECTS(tokens.universe_size() == order_.size());
  OCD_EXPECTS(out.universe_size() == order_.size());
  out.clear();
  tokens.for_each(
      [&](TokenId t) { out.set(rank_[static_cast<std::size_t>(t)]); });
}

void RarityRanker::to_tokens_into(TokenSetView ranked,
                                  MutableTokenSetView out) const {
  OCD_EXPECTS(ranked.universe_size() == order_.size());
  OCD_EXPECTS(out.universe_size() == order_.size());
  out.clear();
  ranked.for_each(
      [&](TokenId r) { out.set(order_[static_cast<std::size_t>(r)]); });
}

TokenId rarest_in_intersection(const RarityRanker& ranker,
                               TokenSetView ranked_a, TokenSetView ranked_b) {
  const TokenId rank = TokenSet::first_in_intersection(ranked_a, ranked_b);
  return rank < 0 ? rank : ranker.token_at(rank);
}

}  // namespace ocd
