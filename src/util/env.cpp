#include "ocd/util/env.hpp"

#include <stdexcept>
#include <string>

#include "ocd/util/error.hpp"

namespace ocd::util {

std::int64_t parse_env_int(std::string_view name, const char* text,
                           std::int64_t max_value) {
  const std::string value = text == nullptr ? "" : text;
  std::size_t consumed = 0;
  long long parsed = -1;
  // stoll alone is too permissive for a knob (it skips leading
  // whitespace and accepts a sign); demand a bare digit string.
  const bool bare_digits =
      !value.empty() && value.find_first_not_of("0123456789") ==
                            std::string::npos;
  try {
    if (bare_digits) parsed = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != value.size() || parsed <= 0 ||
      parsed > max_value) {
    throw Error(std::string(name) + " must be a positive integer, got '" +
                value + "'");
  }
  return static_cast<std::int64_t>(parsed);
}

}  // namespace ocd::util
