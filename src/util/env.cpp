#include "ocd/util/env.hpp"

#include <stdexcept>
#include <string>

#include "ocd/util/error.hpp"

namespace ocd::util {

namespace {

std::int64_t parse_bounded(std::string_view name, const char* text,
                           std::int64_t min_value, std::int64_t max_value,
                           const char* kind) {
  const std::string value = text == nullptr ? "" : text;
  std::size_t consumed = 0;
  long long parsed = -1;
  // stoll alone is too permissive for a knob (it skips leading
  // whitespace and accepts a sign); demand a bare digit string.
  const bool bare_digits =
      !value.empty() && value.find_first_not_of("0123456789") ==
                            std::string::npos;
  try {
    if (bare_digits) parsed = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != value.size() || parsed < min_value ||
      parsed > max_value) {
    throw Error(std::string(name) + " must be a " + kind + " integer, got '" +
                value + "'");
  }
  return static_cast<std::int64_t>(parsed);
}

}  // namespace

std::int64_t parse_env_int(std::string_view name, const char* text,
                           std::int64_t max_value) {
  return parse_bounded(name, text, 1, max_value, "positive");
}

std::int64_t parse_env_nonneg_int(std::string_view name, const char* text,
                                  std::int64_t max_value) {
  return parse_bounded(name, text, 0, max_value, "non-negative");
}

}  // namespace ocd::util
