#include "ocd/util/binstream.hpp"

#include <cstring>
#include <limits>
#include <sstream>

namespace ocd::util {

namespace {

/// Bytes one LEB128-coded id below `universe` can occupy; drives the
/// deterministic raw-vs-sparse choice in put_token_set.
std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

[[noreturn]] void fail_corrupt(const char* field, const char* why) {
  std::ostringstream msg;
  msg << "binstream: corrupt stream reading '" << field << "': " << why;
  throw Error(msg.str());
}

}  // namespace

void BinStream::fail_truncated(const char* field, std::size_t need) const {
  std::ostringstream msg;
  msg << "binstream: truncated stream reading '" << field << "' (need "
      << need << " byte(s) at offset " << pos_ << ", have "
      << bytes_.size() - pos_ << ")";
  throw Error(msg.str());
}

void BinStream::require(bool cond, const char* field,
                        const char* why) const {
  if (!cond) fail_corrupt(field, why);
}

const char* BinStream::read_span(const char* field, std::size_t n) {
  if (bytes_.size() - pos_ < n) fail_truncated(field, n);
  const char* out = bytes_.data() + pos_;
  pos_ += n;
  return out;
}

void BinStream::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void BinStream::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void BinStream::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BinStream::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  bytes_.push_back(static_cast<char>(v));
}

void BinStream::put_varint_signed(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void BinStream::put_bytes(const void* data, std::size_t n) {
  bytes_.append(static_cast<const char*>(data), n);
}

void BinStream::put_string(std::string_view s) {
  put_varint(s.size());
  bytes_.append(s.data(), s.size());
}

std::uint8_t BinStream::get_u8(const char* field) {
  return static_cast<std::uint8_t>(*read_span(field, 1));
}

std::uint32_t BinStream::get_u32(const char* field) {
  const char* p = read_span(field, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t BinStream::get_u64(const char* field) {
  const char* p = read_span(field, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

double BinStream::get_f64(const char* field) {
  const std::uint64_t bits = get_u64(field);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool BinStream::get_bool(const char* field) {
  const std::uint8_t v = get_u8(field);
  require(v <= 1, field, "boolean byte not 0/1");
  return v != 0;
}

std::uint64_t BinStream::get_varint(const char* field) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const auto byte =
        static_cast<std::uint8_t>(*read_span(field, 1));
    // The 10th byte may only carry the single remaining bit.
    require(shift < 63 || byte <= 1, field, "varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail_corrupt(field, "varint longer than 10 bytes");
}

std::int64_t BinStream::get_varint_signed(const char* field) {
  const std::uint64_t u = get_varint(field);
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string BinStream::get_string(const char* field) {
  const std::uint64_t n = get_varint(field);
  require(n <= bytes_.size() - pos_, field,
          "string length exceeds remaining bytes");
  const char* p = read_span(field, static_cast<std::size_t>(n));
  return std::string(p, static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------
// TokenSet
// ---------------------------------------------------------------------
namespace {
constexpr std::uint8_t kTokenSetRaw = 0;
constexpr std::uint8_t kTokenSetSparse = 1;
}  // namespace

void put_token_set(BinStream& stream, TokenSetView tokens) {
  const std::size_t universe = tokens.universe_size();
  const std::size_t words = tokens.num_words();
  stream.put_varint(universe);
  const std::size_t count = tokens.count();
  // Worst-case sparse size vs exact raw size; ties go to raw (one
  // memcpy-shaped decode instead of a bit-set loop).
  const std::size_t id_len = universe == 0 ? 1 : varint_len(universe - 1);
  if (count * id_len + varint_len(count) < words * 8) {
    stream.put_u8(kTokenSetSparse);
    stream.put_varint(count);
    TokenId prev = -1;
    tokens.for_each([&](TokenId t) {
      stream.put_varint(static_cast<std::uint64_t>(t - prev - 1));
      prev = t;
    });
  } else {
    stream.put_u8(kTokenSetRaw);
    for (std::size_t w = 0; w < words; ++w)
      stream.put_u64(tokens.words_data()[w]);
  }
}

namespace {

/// Shared decode core: validates and sets bits into `out`, which must
/// already span `universe` (cleared by the caller).
void decode_token_set(BinStream& stream, const char* field,
                      MutableTokenSetView out) {
  const std::size_t universe = out.universe_size();
  const std::uint8_t tag = stream.get_u8(field);
  if (tag == kTokenSetRaw) {
    const std::size_t words = out.num_words();
    for (std::size_t w = 0; w < words; ++w)
      out.mutable_words()[w] = stream.get_u64(field);
    if (universe % 64 != 0 && words > 0) {
      const std::uint64_t tail_mask = (~0ULL) >> (64 - universe % 64);
      stream.require((out.words_data()[words - 1] & ~tail_mask) == 0, field,
                     "raw bitset has bits set beyond the universe");
    }
  } else if (tag == kTokenSetSparse) {
    const std::uint64_t count = stream.get_varint(field);
    stream.require(count <= universe, field,
                   "sparse token count exceeds universe");
    std::int64_t prev = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t delta = stream.get_varint(field);
      const std::int64_t t = prev + 1 + static_cast<std::int64_t>(delta);
      stream.require(t < static_cast<std::int64_t>(universe), field,
                     "token id outside the declared universe");
      out.set(static_cast<TokenId>(t));
      prev = t;
    }
  } else {
    stream.require(false, field, "unknown token-set encoding tag");
  }
}

}  // namespace

TokenSet get_token_set(BinStream& stream, const char* field) {
  const std::uint64_t universe = stream.get_varint(field);
  // An attacker-controlled universe drives the allocation below;
  // TokenId is 32-bit signed, so anything beyond its range is garbage.
  stream.require(
      universe <= static_cast<std::uint64_t>(
                      std::numeric_limits<std::int32_t>::max()),
      field, "token-set universe exceeds the TokenId range");
  TokenSet out(static_cast<std::size_t>(universe));
  decode_token_set(stream, field, MutableTokenSetView(out));
  return out;
}

void get_token_set_into(BinStream& stream, const char* field,
                        MutableTokenSetView out) {
  const std::uint64_t universe = stream.get_varint(field);
  stream.require(universe == out.universe_size(), field,
                 "token-set universe does not match the destination");
  out.clear();
  decode_token_set(stream, field, out);
}

// ---------------------------------------------------------------------
// TokenMatrix
// ---------------------------------------------------------------------
void put_token_matrix(BinStream& stream, const TokenMatrix& matrix) {
  stream.put_varint(matrix.rows());
  stream.put_varint(matrix.universe_size());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const TokenSetView row = matrix.row(r);
    for (std::size_t w = 0; w < row.num_words(); ++w)
      stream.put_u64(row.words_data()[w]);
  }
}

TokenMatrix get_token_matrix(BinStream& stream, const char* field) {
  const std::uint64_t rows = stream.get_varint(field);
  const std::uint64_t universe = stream.get_varint(field);
  stream.require(
      universe <= static_cast<std::uint64_t>(
                      std::numeric_limits<std::int32_t>::max()),
      field, "token-matrix universe exceeds the TokenId range");
  const std::uint64_t words = (universe + 63) / 64;
  // 8 bytes per stored word must still be ahead in the buffer; checking
  // before the allocation keeps a forged row count from OOMing.
  stream.require(rows <= (stream.size() / 8 + 1) / (words ? words : 1),
                 field, "token-matrix row count exceeds remaining bytes");
  TokenMatrix out(static_cast<std::size_t>(rows),
                  static_cast<std::size_t>(universe));
  const std::uint64_t tail_mask =
      universe % 64 == 0 ? ~0ULL : (~0ULL) >> (64 - universe % 64);
  for (std::uint64_t r = 0; r < rows; ++r) {
    MutableTokenSetView row = out.row(static_cast<std::size_t>(r));
    for (std::uint64_t w = 0; w < words; ++w)
      row.mutable_words()[w] = stream.get_u64(field);
    if (words > 0) {
      stream.require((row.words_data()[words - 1] & ~tail_mask) == 0, field,
                     "token-matrix row has bits set beyond the universe");
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Digraph / Instance / Schedule
// ---------------------------------------------------------------------
void put_digraph(BinStream& stream, const Digraph& graph) {
  stream.put_varint(static_cast<std::uint64_t>(graph.num_vertices()));
  stream.put_varint(static_cast<std::uint64_t>(graph.num_arcs()));
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    stream.put_varint(static_cast<std::uint64_t>(arc.from));
    stream.put_varint(static_cast<std::uint64_t>(arc.to));
    stream.put_varint_signed(arc.capacity);
  }
}

Digraph get_digraph(BinStream& stream, const char* field) {
  const std::uint64_t n = stream.get_varint(field);
  const std::uint64_t num_arcs = stream.get_varint(field);
  stream.require(n <= static_cast<std::uint64_t>(
                          std::numeric_limits<std::int32_t>::max()),
                 field, "vertex count exceeds the VertexId range");
  // Every arc needs at least 3 bytes ahead of us.
  stream.require(num_arcs <= stream.size() / 3 + 1, field,
                 "arc count exceeds remaining bytes");
  Digraph graph(static_cast<std::int32_t>(n));
  for (std::uint64_t i = 0; i < num_arcs; ++i) {
    const std::uint64_t from = stream.get_varint(field);
    const std::uint64_t to = stream.get_varint(field);
    const std::int64_t capacity = stream.get_varint_signed(field);
    stream.require(from < n && to < n, field,
                   "arc endpoint outside the vertex range");
    stream.require(from != to, field, "self-loop arc");
    stream.require(capacity >= 0 && capacity <= std::numeric_limits<
                                                    std::int32_t>::max(),
                   field, "arc capacity out of range");
    stream.require(
        !graph.has_arc(static_cast<VertexId>(from),
                       static_cast<VertexId>(to)),
        field, "duplicate arc");
    graph.add_arc(static_cast<VertexId>(from), static_cast<VertexId>(to),
                  static_cast<std::int32_t>(capacity));
  }
  graph.finalize();
  return graph;
}

void put_instance(BinStream& stream, const core::Instance& instance) {
  put_digraph(stream, instance.graph());
  stream.put_varint(static_cast<std::uint64_t>(instance.num_tokens()));
  for (VertexId v = 0; v < instance.num_vertices(); ++v)
    put_token_set(stream, TokenSetView(instance.have(v)));
  for (VertexId v = 0; v < instance.num_vertices(); ++v)
    put_token_set(stream, TokenSetView(instance.want(v)));
  stream.put_varint(instance.files().size());
  for (const core::File& file : instance.files()) {
    stream.put_varint(static_cast<std::uint64_t>(file.first));
    stream.put_varint(static_cast<std::uint64_t>(file.size));
  }
}

core::Instance get_instance(BinStream& stream, const char* field) {
  Digraph graph = get_digraph(stream, field);
  const std::uint64_t num_tokens = stream.get_varint(field);
  stream.require(
      num_tokens <= static_cast<std::uint64_t>(
                        std::numeric_limits<std::int32_t>::max()),
      field, "token universe exceeds the TokenId range");
  const std::int32_t n = graph.num_vertices();
  core::Instance instance(std::move(graph),
                          static_cast<std::int32_t>(num_tokens));
  for (VertexId v = 0; v < n; ++v) {
    TokenSet have = get_token_set(stream, field);
    stream.require(have.universe_size() == num_tokens, field,
                   "have-set universe does not match the instance");
    instance.set_have(v, std::move(have));
  }
  for (VertexId v = 0; v < n; ++v) {
    TokenSet want = get_token_set(stream, field);
    stream.require(want.universe_size() == num_tokens, field,
                   "want-set universe does not match the instance");
    instance.set_want(v, std::move(want));
  }
  const std::uint64_t num_files = stream.get_varint(field);
  stream.require(num_files <= stream.size(), field,
                 "file count exceeds remaining bytes");
  for (std::uint64_t i = 0; i < num_files; ++i) {
    const std::uint64_t first = stream.get_varint(field);
    const std::uint64_t size = stream.get_varint(field);
    stream.require(first + size <= num_tokens, field,
                   "file range outside the token universe");
    instance.add_file(static_cast<TokenId>(first),
                      static_cast<std::int32_t>(size));
  }
  return instance;
}

void put_schedule(BinStream& stream, const core::Schedule& schedule) {
  stream.put_varint(schedule.steps().size());
  for (const core::Timestep& step : schedule.steps()) {
    stream.put_varint(step.sends().size());
    for (const core::ArcSend& send : step.sends()) {
      stream.put_varint(static_cast<std::uint64_t>(send.arc));
      put_token_set(stream, TokenSetView(send.tokens));
    }
  }
}

core::Schedule get_schedule(BinStream& stream, const char* field) {
  const std::uint64_t num_steps = stream.get_varint(field);
  stream.require(num_steps <= stream.size(), field,
                 "timestep count exceeds remaining bytes");
  core::Schedule out;
  for (std::uint64_t s = 0; s < num_steps; ++s) {
    const std::uint64_t num_sends = stream.get_varint(field);
    stream.require(num_sends <= stream.size(), field,
                   "send count exceeds remaining bytes");
    core::Timestep step;
    step.sends().reserve(static_cast<std::size_t>(num_sends));
    for (std::uint64_t i = 0; i < num_sends; ++i) {
      const std::uint64_t arc = stream.get_varint(field);
      stream.require(arc <= static_cast<std::uint64_t>(
                                std::numeric_limits<std::int32_t>::max()),
                     field, "arc id exceeds the ArcId range");
      core::ArcSend send;
      send.arc = static_cast<ArcId>(arc);
      send.tokens = get_token_set(stream, field);
      step.sends().push_back(std::move(send));
    }
    out.append(std::move(step));
  }
  return out;
}

}  // namespace ocd::util
