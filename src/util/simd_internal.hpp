// Internal linkage seam between the dispatch resolver (simd.cpp) and
// the per-ISA kernel translation units (simd_avx2.cpp, simd_avx512.cpp,
// each compiled with its own -m flags).  A TU whose ISA the build
// cannot target returns nullptr and the resolver treats the level as
// uncompiled.
#pragma once

#include "ocd/util/simd.hpp"

namespace ocd::util::simd::detail {

/// AVX2 kernel table, or nullptr when this binary was built without
/// AVX2 codegen for simd_avx2.cpp.
const Kernels* avx2_kernels() noexcept;

/// AVX-512 (F + VPOPCNTDQ) kernel table, or nullptr when this binary
/// was built without AVX-512 codegen for simd_avx512.cpp.
const Kernels* avx512_kernels() noexcept;

}  // namespace ocd::util::simd::detail
