// AVX-512 word kernels: 8 x uint64 per 512-bit vector, native vpopcntq
// (AVX-512VPOPCNTDQ) popcounts and mask-register emptiness tests.
// Unaligned loads only; sub-vector remainders go scalar rather than
// through masked loads, so no instruction ever touches memory past
// num_words (keeps ASan exact) and no alignment beyond
// alignof(uint64_t) is assumed.  Compiled with -mavx512f
// -mavx512vpopcntdq; degrades to a nullptr table otherwise.
#include "simd_internal.hpp"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace ocd::util::simd::detail {
namespace {

inline __m512i load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }

inline void store(std::uint64_t* p, __m512i v) { _mm512_storeu_si512(p, v); }

std::size_t avx512_count(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load(a + i)));
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  return total;
}

std::size_t avx512_count_intersection(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i both = _mm512_and_epi64(load(a + i), load(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(both));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

bool avx512_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i stray = _mm512_andnot_epi64(load(b + i), load(a + i));
    if (_mm512_test_epi64_mask(stray, stray) != 0) return false;
  }
  for (; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool avx512_intersects(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_test_epi64_mask(load(a + i), load(b + i)) != 0) return true;
  }
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

std::size_t avx512_first_and_word(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t from,
                                  std::size_t n) {
  std::size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 hits = _mm512_test_epi64_mask(load(a + i), load(b + i));
    if (hits != 0)
      return i + static_cast<std::size_t>(__builtin_ctz(
                     static_cast<unsigned>(hits)));
  }
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

std::size_t avx512_fresh_union_apply(std::uint64_t* dst,
                                     const std::uint64_t* src,
                                     std::uint64_t* fresh, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = load(dst + i);
    const __m512i vs = load(src + i);
    const __m512i vf = _mm512_andnot_epi64(vd, vs);  // src & ~dst
    store(fresh + i, vf);
    store(dst + i, _mm512_or_epi64(vd, vs));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(vf));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

std::size_t avx512_fresh_union_apply_merge(std::uint64_t* dst,
                                           std::uint64_t* uni,
                                           const std::uint64_t* src,
                                           std::uint64_t* fresh,
                                           std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = load(dst + i);
    const __m512i vs = load(src + i);
    const __m512i vf = _mm512_andnot_epi64(vd, vs);
    store(fresh + i, vf);
    store(dst + i, _mm512_or_epi64(vd, vs));
    store(uni + i, _mm512_or_epi64(load(uni + i), vf));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(vf));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    uni[i] |= f;
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

constexpr Kernels kAvx512Kernels = {
    avx512_count,
    avx512_count_intersection,
    avx512_is_subset,
    avx512_intersects,
    avx512_first_and_word,
    avx512_fresh_union_apply,
    avx512_fresh_union_apply_merge,
};

}  // namespace

const Kernels* avx512_kernels() noexcept { return &kAvx512Kernels; }

}  // namespace ocd::util::simd::detail

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__)

namespace ocd::util::simd::detail {

const Kernels* avx512_kernels() noexcept { return nullptr; }

}  // namespace ocd::util::simd::detail

#endif
