// AVX2 word kernels: 4 x uint64 per 256-bit vector, unaligned loads
// only (TokenMatrix rows are alignof(uint64_t)), sub-vector remainders
// handled by scalar code so no load ever touches words past num_words.
// Popcounts use the pshufb nibble-LUT + psadbw reduction; emptiness
// tests use vptest for early exit.  This TU is compiled with -mavx2 —
// when the toolchain/arch cannot do that, it degrades to a nullptr
// table and the resolver never selects the level.
#include "simd_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ocd::util::simd::detail {
namespace {

inline __m256i load(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Per-lane popcount: 4 x uint64 partial sums (nibble LUT via pshufb,
/// byte sums folded with psadbw).
inline __m256i popcount_lanes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t horizontal_sum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

std::size_t avx2_count(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_epi64(acc, popcount_lanes(load(a + i)));
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  return total;
}

std::size_t avx2_count_intersection(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i both = _mm256_and_si256(load(a + i), load(b + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(both));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i)
    total += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

bool avx2_is_subset(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vptest CF: (~b & a) == 0, i.e. a's block is a subset of b's.
    if (!_mm256_testc_si256(load(b + i), load(a + i))) return false;
  }
  for (; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

bool avx2_intersects(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vptest ZF: (a & b) == 0 for the whole block.
    if (!_mm256_testz_si256(load(a + i), load(b + i))) return true;
  }
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

std::size_t avx2_first_and_word(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t from, std::size_t n) {
  std::size_t i = from;
  for (; i + 4 <= n; i += 4) {
    const __m256i both = _mm256_and_si256(load(a + i), load(b + i));
    if (_mm256_testz_si256(both, both)) continue;
    for (std::size_t j = i; j < i + 4; ++j)
      if ((a[j] & b[j]) != 0) return j;
  }
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return i;
  return n;
}

std::size_t avx2_fresh_union_apply(std::uint64_t* dst,
                                   const std::uint64_t* src,
                                   std::uint64_t* fresh, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = load(dst + i);
    const __m256i vs = load(src + i);
    const __m256i vf = _mm256_andnot_si256(vd, vs);  // src & ~dst
    store(fresh + i, vf);
    store(dst + i, _mm256_or_si256(vd, vs));
    acc = _mm256_add_epi64(acc, popcount_lanes(vf));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

std::size_t avx2_fresh_union_apply_merge(std::uint64_t* dst,
                                         std::uint64_t* uni,
                                         const std::uint64_t* src,
                                         std::uint64_t* fresh, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = load(dst + i);
    const __m256i vs = load(src + i);
    const __m256i vf = _mm256_andnot_si256(vd, vs);
    store(fresh + i, vf);
    store(dst + i, _mm256_or_si256(vd, vs));
    store(uni + i, _mm256_or_si256(load(uni + i), vf));
    acc = _mm256_add_epi64(acc, popcount_lanes(vf));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i) {
    const std::uint64_t f = src[i] & ~dst[i];
    fresh[i] = f;
    dst[i] |= src[i];
    uni[i] |= f;
    total += static_cast<std::size_t>(__builtin_popcountll(f));
  }
  return total;
}

constexpr Kernels kAvx2Kernels = {
    avx2_count,
    avx2_count_intersection,
    avx2_is_subset,
    avx2_intersects,
    avx2_first_and_word,
    avx2_fresh_union_apply,
    avx2_fresh_union_apply_merge,
};

}  // namespace

const Kernels* avx2_kernels() noexcept { return &kAvx2Kernels; }

}  // namespace ocd::util::simd::detail

#else  // !__AVX2__

namespace ocd::util::simd::detail {

const Kernels* avx2_kernels() noexcept { return nullptr; }

}  // namespace ocd::util::simd::detail

#endif
