#include "ocd/util/token_set.hpp"

#include <sstream>

namespace ocd {

TokenSet TokenSet::full(std::size_t universe) {
  TokenSet s(universe);
  if (universe == 0) return s;
  for (auto& w : s.words_) w = ~0ULL;
  // Mask off bits beyond the universe in the last word.
  const unsigned rem = universe % 64;
  if (rem != 0) s.words_.back() = (1ULL << rem) - 1;
  return s;
}

TokenSet TokenSet::of(std::size_t universe,
                      std::initializer_list<TokenId> ids) {
  TokenSet s(universe);
  for (TokenId t : ids) s.set(t);
  return s;
}

std::size_t TokenSet::count() const noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

bool TokenSet::empty() const noexcept {
  for (std::uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

bool TokenSet::is_subset_of(const TokenSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool TokenSet::intersects(const TokenSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

TokenSet& TokenSet::operator|=(const TokenSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

TokenSet& TokenSet::operator&=(const TokenSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

TokenSet& TokenSet::operator-=(const TokenSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

TokenSet& TokenSet::operator^=(const TokenSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

TokenId TokenSet::first_in_intersection(const TokenSet& a, const TokenSet& b) {
  a.check_same_universe(b);
  for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
    const std::uint64_t w = a.words_[wi] & b.words_[wi];
    if (w != 0) {
      return static_cast<TokenId>(wi * 64 +
                                  static_cast<std::size_t>(__builtin_ctzll(w)));
    }
  }
  return -1;
}

std::size_t TokenSet::count_intersection(const TokenSet& a,
                                         const TokenSet& b) {
  a.check_same_universe(b);
  std::size_t n = 0;
  for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
    n += static_cast<std::size_t>(
        __builtin_popcountll(a.words_[wi] & b.words_[wi]));
  }
  return n;
}

TokenId TokenSet::first() const noexcept {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return static_cast<TokenId>(wi * 64 +
                                  static_cast<std::size_t>(__builtin_ctzll(words_[wi])));
    }
  }
  return -1;
}

TokenId TokenSet::next(TokenId t) const {
  if (t < 0) t = 0;
  if (static_cast<std::size_t>(t) >= universe_) return -1;
  std::size_t wi = word_of(t);
  std::uint64_t w = words_[wi] & (~0ULL << bit_of(t));
  while (true) {
    if (w != 0) {
      return static_cast<TokenId>(wi * 64 +
                                  static_cast<std::size_t>(__builtin_ctzll(w)));
    }
    if (++wi >= words_.size()) return -1;
    w = words_[wi];
  }
}

TokenId TokenSet::next_circular(TokenId t) const {
  if (universe_ == 0) return -1;
  if (t < 0 || static_cast<std::size_t>(t) >= universe_) t = 0;
  const TokenId found = next(t);
  if (found >= 0) return found;
  return first();
}

std::vector<TokenId> TokenSet::to_vector() const {
  std::vector<TokenId> out;
  out.reserve(count());
  for_each([&](TokenId t) { out.push_back(t); });
  return out;
}

void TokenSet::truncate(std::size_t k) {
  std::size_t seen = 0;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    const auto in_word =
        static_cast<std::size_t>(__builtin_popcountll(words_[wi]));
    if (seen + in_word <= k) {
      seen += in_word;
      continue;
    }
    // Keep only the lowest (k - seen) bits of this word, zero the rest.
    std::uint64_t w = words_[wi];
    std::uint64_t kept = 0;
    for (std::size_t need = k - seen; need > 0; --need) {
      const std::uint64_t lowest = w & (~w + 1);
      kept |= lowest;
      w &= w - 1;
    }
    words_[wi] = kept;
    for (std::size_t wj = wi + 1; wj < words_.size(); ++wj) words_[wj] = 0;
    return;
  }
}

std::string TokenSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first_item = true;
  for_each([&](TokenId t) {
    if (!first_item) out << ',';
    out << t;
    first_item = false;
  });
  out << '}';
  return out.str();
}

std::size_t TokenSet::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ universe_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace ocd
