#include "ocd/util/token_set.hpp"

#include <sstream>

namespace ocd {

TokenSet TokenSet::full(std::size_t universe) {
  TokenSet s(universe);
  if (universe == 0) return s;
  for (auto& w : s.words_) w = ~0ULL;
  // Mask off bits beyond the universe in the last word: every kernel
  // (scalar or vectorized) iterates whole words and relies on the tail
  // bits staying zero.
  const unsigned rem = universe % 64;
  if (rem != 0) s.words_.back() = (1ULL << rem) - 1;
  TokenSetView(s).assert_tail_zero();
  return s;
}

TokenSet TokenSet::of(std::size_t universe,
                      std::initializer_list<TokenId> ids) {
  TokenSet s(universe);
  for (TokenId t : ids) s.set(t);
  return s;
}

void TokenSet::truncate(std::size_t k) {
  std::size_t seen = 0;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    const auto in_word =
        static_cast<std::size_t>(__builtin_popcountll(words_[wi]));
    if (seen + in_word <= k) {
      seen += in_word;
      continue;
    }
    // Keep only the lowest (k - seen) bits of this word, zero the rest.
    std::uint64_t w = words_[wi];
    std::uint64_t kept = 0;
    for (std::size_t need = k - seen; need > 0; --need) {
      const std::uint64_t lowest = w & (~w + 1);
      kept |= lowest;
      w &= w - 1;
    }
    words_[wi] = kept;
    for (std::size_t wj = wi + 1; wj < words_.size(); ++wj) words_[wj] = 0;
    TokenSetView(*this).assert_tail_zero();
    return;
  }
}

std::string TokenSetView::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first_item = true;
  for_each([&](TokenId t) {
    if (!first_item) out << ',';
    out << t;
    first_item = false;
  });
  out << '}';
  return out.str();
}

std::string TokenSet::to_string() const {
  return TokenSetView(*this).to_string();
}

std::size_t TokenSet::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ universe_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace ocd
