#include "ocd/util/parallel.hpp"

#include "ocd/util/env.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ocd::util {
namespace {

thread_local bool tls_pool_worker = false;

std::atomic<unsigned> g_jobs_override{0};

/// The process-shared worker pool.  One region runs at a time
/// (publication is serialized by submit_m_); workers and the caller
/// claim fixed-boundary chunks off a shared cursor under the region
/// mutex — which worker runs which chunk is the only scheduling
/// freedom, and chunk outputs are index-addressed, so no output ever
/// depends on it.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  bool run(std::size_t n_chunks, unsigned workers,
           void (*invoke)(void*, std::size_t), void* ctx) {
    if (tls_pool_worker || n_chunks <= 1 || workers <= 1) return false;
    if (workers > n_chunks) workers = static_cast<unsigned>(n_chunks);

    // One region at a time; a second top-level caller waits its turn.
    const std::lock_guard<std::mutex> submit(submit_m_);
    ensure_threads(workers - 1);

    std::unique_lock<std::mutex> lock(m_);
    invoke_ = invoke;
    ctx_ = ctx;
    n_chunks_ = n_chunks;
    next_ = 0;
    done_ = 0;
    seats_ = workers - 1;
    error_ = nullptr;
    error_chunk_ = std::numeric_limits<std::size_t>::max();
    ++generation_;
    cv_work_.notify_all();

    // The caller is a worker too (and counts against the budget).  Its
    // chunk bodies must see nested primitives run inline.
    tls_pool_worker = true;
    drain(lock);
    tls_pool_worker = false;

    cv_done_.wait(lock, [&] { return done_ == n_chunks_; });
    seats_ = 0;
    invoke_ = nullptr;
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();

    if (error) std::rethrow_exception(error);
    return true;
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(m_);
      shutdown_ = true;
      cv_work_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

  /// Grows the pool to at least `count` resident workers.  Only called
  /// under submit_m_, so thread creation never races a region.
  void ensure_threads(unsigned count) {
    while (threads_.size() < count)
      threads_.emplace_back([this] { worker_loop(); });
  }

  /// Claims and runs chunks until the cursor is exhausted.  Expects
  /// `lock` held on entry; holds it again on exit.
  void drain(std::unique_lock<std::mutex>& lock) {
    while (next_ < n_chunks_) {
      const std::size_t chunk = next_++;
      auto* const invoke = invoke_;
      void* const ctx = ctx_;
      lock.unlock();
      std::exception_ptr error;
      try {
        invoke(ctx, chunk);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && chunk < error_chunk_) {
        // Keep the lowest-index exception: all chunks run regardless,
        // so the choice is a pure function of the chunk outcomes, not
        // of scheduling.
        error_chunk_ = chunk;
        error_ = error;
      }
      ++done_;
    }
  }

  void worker_loop() {
    tls_pool_worker = true;
    std::unique_lock<std::mutex> lock(m_);
    // A worker spawned after a region was published must still join it:
    // start behind every real generation.
    std::uint64_t seen = 0;
    while (true) {
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      if (seats_ == 0) continue;  // region already fully crewed
      --seats_;
      drain(lock);
      if (done_ == n_chunks_) cv_done_.notify_all();
    }
  }

  std::mutex submit_m_;  ///< serializes regions (held across run())
  std::mutex m_;         ///< guards all fields below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  // The active region.
  void (*invoke_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_chunks_ = 0;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
  unsigned seats_ = 0;  ///< worker threads still allowed to join
  std::exception_ptr error_;
  std::size_t error_chunk_ = 0;
};

}  // namespace

unsigned parse_jobs_value(const char* text) {
  return static_cast<unsigned>(parse_env_int("OCD_JOBS", text));
}

unsigned parallel_jobs() {
  const unsigned override = g_jobs_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  if (const char* env = std::getenv("OCD_JOBS")) return parse_jobs_value(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_parallel_jobs(unsigned jobs) {
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

bool on_parallel_worker() { return tls_pool_worker; }

namespace detail {

bool pool_run(std::size_t n_chunks, unsigned workers,
              void (*invoke)(void*, std::size_t), void* ctx) {
  return Pool::instance().run(n_chunks, workers, invoke, ctx);
}

}  // namespace detail
}  // namespace ocd::util
