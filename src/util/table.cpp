#include "ocd/util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "ocd/util/error.hpp"

namespace ocd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OCD_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<TableCell> row) {
  OCD_EXPECTS(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void Table::set_precision(int digits) {
  OCD_EXPECTS(digits >= 0 && digits <= 12);
  precision_ = digits;
}

std::string Table::render_cell(const TableCell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    out << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rendered) line(row);
  rule();
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::string& cell, bool last) {
    const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (needs_quotes) {
      out << '"';
      for (char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << cell;
    }
    out << (last ? '\n' : ',');
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    emit(headers_[c], c + 1 == headers_.size());
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      emit(render_cell(row[c]), c + 1 == row.size());
}

}  // namespace ocd
