#include "ocd/util/rng.hpp"

#include <algorithm>

namespace ocd {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  OCD_EXPECTS(n > 0);
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OCD_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform_real() noexcept {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx;
  sample_indices_into(n, k, idx);
  return idx;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out) {
  OCD_EXPECTS(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // sizes used in this library (n <= a few thousand).
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(out[i], out[j]);
  }
  out.resize(k);
}

Rng Rng::split() noexcept {
  Rng child(0);
  child.s_ = {next(), next(), next(), next()};
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.s_[0] = 0x9e3779b97f4a7c15ULL;
  }
  return child;
}

}  // namespace ocd
