#include "ocd/heuristics/rarest_random.hpp"

#include <algorithm>
#include <numeric>

namespace ocd::heuristics {

void RarestRandomPolicy::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed);
}

void RarestRandomPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const auto holders = view.aggregate_holders();
  const auto need = view.aggregate_need();

  // Global priority order shared by all vertices this step (both
  // aggregates are distributed to everyone, §5.1): tokens somebody still
  // needs come first, rarest first within each class, random tie-break.
  std::vector<TokenId> rarity_order(universe);
  std::iota(rarity_order.begin(), rarity_order.end(), 0);
  rng_.shuffle(rarity_order);
  std::stable_sort(rarity_order.begin(), rarity_order.end(),
                   [&](TokenId a, TokenId b) {
                     const bool needed_a = need[static_cast<std::size_t>(a)] > 0;
                     const bool needed_b = need[static_cast<std::size_t>(b)] > 0;
                     if (needed_a != needed_b) return needed_a;
                     return holders[static_cast<std::size_t>(a)] <
                            holders[static_cast<std::size_t>(b)];
                   });

  // Pass 1 — receivers subdivide their lacking tokens into per-arc
  // requests.
  std::vector<TokenSet> requests(static_cast<std::size_t>(graph.num_arcs()),
                                 TokenSet(universe));
  std::vector<std::int32_t> budget(static_cast<std::size_t>(graph.num_arcs()));
  for (ArcId a = 0; a < graph.num_arcs(); ++a)
    budget[static_cast<std::size_t>(a)] = view.capacity(a);

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const TokenSet& mine = view.own_possession(v);
    const auto in_arcs = graph.in_arcs(v);
    if (in_arcs.empty()) continue;

    // Tokens available from each in-neighbor (per the stale peer view).
    std::vector<TokenSet> offered;
    offered.reserve(in_arcs.size());
    bool anything = false;
    for (ArcId a : in_arcs) {
      TokenSet tokens = view.peer_possession(v, graph.arc(a).from);
      tokens -= mine;
      anything = anything || !tokens.empty();
      offered.push_back(std::move(tokens));
    }
    if (!anything) continue;

    std::int64_t total_budget = 0;
    for (ArcId a : in_arcs) total_budget += budget[static_cast<std::size_t>(a)];

    const TokenSet wanted = view.own_want(v) - mine;
    // Two priority passes: wanted tokens first, then pure flood tokens.
    for (const bool wanted_pass : {true, false}) {
      if (total_budget <= 0) break;
      for (TokenId t : rarity_order) {
        if (total_budget <= 0) break;
        if (wanted.test(t) != wanted_pass) continue;
        if (mine.test(t)) continue;
        // Already requested from some arc this step?
        bool requested = false;
        for (std::size_t k = 0; k < in_arcs.size() && !requested; ++k)
          requested = requests[static_cast<std::size_t>(in_arcs[k])].test(t);
        if (requested) continue;
        // Choose the offering arc with the largest remaining budget
        // (balances load across peers); random tie-break via scan order.
        std::int32_t best = -1;
        std::int32_t best_budget = 0;
        for (std::size_t k = 0; k < in_arcs.size(); ++k) {
          const ArcId a = in_arcs[k];
          if (!offered[k].test(t)) continue;
          const std::int32_t b = budget[static_cast<std::size_t>(a)];
          if (b > best_budget) {
            best_budget = b;
            best = a;
          }
        }
        if (best >= 0) {
          requests[static_cast<std::size_t>(best)].set(t);
          --budget[static_cast<std::size_t>(best)];
          --total_budget;
        }
      }
    }
  }

  // Pass 2 — senders fulfil requests (token presence is guaranteed:
  // the stale view is a subset of current possession).
  bool sent = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (!requests[static_cast<std::size_t>(a)].empty()) {
      plan.send(a, requests[static_cast<std::size_t>(a)]);
      sent = true;
    }
  }
  // No requests can be a legitimate wait: with stale peer knowledge the
  // offers lag behind reality, and progress resumes once the aggregate
  // snapshots age forward.
  if (!sent) plan.mark_idle();
}

}  // namespace ocd::heuristics
