#include "ocd/heuristics/rarest_random.hpp"

#include <algorithm>

#include "ocd/util/binstream.hpp"

namespace ocd::heuristics {

void RarestRandomPolicy::reset(const core::Instance& instance,
                               std::uint64_t seed) {
  rng_ = Rng(seed);
  const Digraph& graph = instance.graph();
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());
  std::size_t max_in_degree = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    max_in_degree = std::max(max_in_degree, graph.in_arcs(v).size());
  requests_.reset(num_arcs, universe);
  offered_.reset(max_in_degree, universe);
  budget_.assign(num_arcs, 0);
  offered_any_ = TokenSet(universe);
  wanted_ = TokenSet(universe);
  ranked_offered_ = TokenSet(universe);
  ranked_wanted_ = TokenSet(universe);
  wanted_pool_ = TokenSet(universe);
  flood_pool_ = TokenSet(universe);
}

void RarestRandomPolicy::begin_plan(const sim::StepView& view) {
  const Digraph& graph = view.graph();

  // Global priority order shared by all vertices this step (both
  // aggregates are distributed to everyone, §5.1): tokens somebody still
  // needs come first, rarest first within each class, random tie-break.
  // Requests then walk rank-space sets (ocd/util/rarity.hpp) so each
  // vertex only visits the tokens its peers actually offer, instead of
  // rescanning the whole priority order.
  //
  // Exactly one rng_ draw sequence per step, independent of how many
  // receivers this planner covers — every shard's stream stays in
  // lockstep with the single-process run.
  ranker_.assign_by_need_then_rarity(view.aggregate_holders(),
                                     view.aggregate_need(), &rng_);

  requests_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a)
    budget_[static_cast<std::size_t>(a)] = view.capacity(a);
}

// Pass 1 for one receiver: subdivide its lacking tokens into per-arc
// requests.  Touches only v's in-arc budgets and request rows, so
// receivers can be planned in any grouping without changing the result.
void RarestRandomPolicy::plan_receiver(VertexId v, const sim::StepView& view) {
  const Digraph& graph = view.graph();
  const TokenSetView mine = view.own_possession(v);
  const auto in_arcs = graph.in_arcs(v);
  if (in_arcs.empty()) return;

  // Tokens available from each in-neighbor (per the stale peer view).
  offered_any_.clear();
  for (std::size_t k = 0; k < in_arcs.size(); ++k) {
    MutableTokenSetView tokens = offered_.row(k);
    tokens.assign(view.peer_possession(v, graph.arc(in_arcs[k]).from));
    tokens -= mine;
    offered_any_ |= tokens;
  }
  if (offered_any_.empty()) return;

  std::int64_t total_budget = 0;
  for (ArcId a : in_arcs)
    total_budget += budget_[static_cast<std::size_t>(a)];

  wanted_.assign(view.own_want(v));
  wanted_ -= mine;
  ranker_.to_ranks_into(offered_any_, ranked_offered_);
  ranker_.to_ranks_into(wanted_, ranked_wanted_);
  // Two priority passes: wanted tokens first, then pure flood tokens.
  // Only offered tokens can turn into requests, so the scan is over
  // the (ranked) offered set split by wantedness.
  wanted_pool_.assign(ranked_offered_);
  wanted_pool_ &= ranked_wanted_;
  flood_pool_.assign(ranked_offered_);
  flood_pool_ -= ranked_wanted_;
  for (const TokenSet* pool : {&wanted_pool_, &flood_pool_}) {
    if (total_budget <= 0) break;
    for (TokenId r = pool->first(); r >= 0; r = pool->next(r + 1)) {
      if (total_budget <= 0) break;
      const TokenId t = ranker_.token_at(r);
      // Choose the offering arc with the largest remaining budget
      // (balances load across peers); random tie-break via scan order.
      std::int32_t best = -1;
      std::int32_t best_budget = 0;
      for (std::size_t k = 0; k < in_arcs.size(); ++k) {
        const ArcId a = in_arcs[k];
        if (!offered_.row(k).test(t)) continue;
        const std::int32_t b = budget_[static_cast<std::size_t>(a)];
        if (b > best_budget) {
          best_budget = b;
          best = a;
        }
      }
      if (best >= 0) {
        requests_.row(static_cast<std::size_t>(best)).set(t);
        --budget_[static_cast<std::size_t>(best)];
        --total_budget;
      }
    }
  }
}

// Pass 2 — senders fulfil requests (token presence is guaranteed:
// the stale view is a subset of current possession).  Arc-ascending,
// so per-shard fragments concatenate back into the plan_step order.
void RarestRandomPolicy::emit_requests(const sim::StepView& view,
                                       sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  bool sent = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const TokenSetView request = requests_.row(static_cast<std::size_t>(a));
    if (!request.empty()) {
      plan.send(a, request);
      sent = true;
    }
  }
  // No requests can be a legitimate wait: with stale peer knowledge the
  // offers lag behind reality, and progress resumes once the aggregate
  // snapshots age forward.
  if (!sent) plan.mark_idle();
}

// All per-step working sets live in the policy's scratch members (sized
// in reset(), overwritten in place here), so a steady-state step is
// allocation-free.
void RarestRandomPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  begin_plan(view);
  for (VertexId v = 0; v < view.graph().num_vertices(); ++v)
    plan_receiver(v, view);
  emit_requests(view, plan);
}

void RarestRandomPolicy::plan_shard(const sim::StepView& view,
                                    sim::StepPlan& plan,
                                    std::span<const VertexId> owned) {
  begin_plan(view);
  for (VertexId v : owned) plan_receiver(v, view);
  emit_requests(view, plan);
}

void RarestRandomPolicy::save_state(util::BinStream& out) const {
  for (std::uint64_t word : rng_.state()) out.put_u64(word);
}

void RarestRandomPolicy::load_state(util::BinStream& in) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = in.get_u64("local.rng");
  rng_.set_state(state);
}

}  // namespace ocd::heuristics
