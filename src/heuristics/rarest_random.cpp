#include "ocd/heuristics/rarest_random.hpp"

#include <vector>

#include "ocd/util/rarity.hpp"

namespace ocd::heuristics {

void RarestRandomPolicy::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed);
}

void RarestRandomPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  // Global priority order shared by all vertices this step (both
  // aggregates are distributed to everyone, §5.1): tokens somebody still
  // needs come first, rarest first within each class, random tie-break.
  // Requests then walk rank-space sets (ocd/util/rarity.hpp) so each
  // vertex only visits the tokens its peers actually offer, instead of
  // rescanning the whole priority order.
  RarityRanker ranker;
  ranker.assign_by_need_then_rarity(view.aggregate_holders(),
                                    view.aggregate_need(), &rng_);

  // Pass 1 — receivers subdivide their lacking tokens into per-arc
  // requests.
  std::vector<TokenSet> requests(static_cast<std::size_t>(graph.num_arcs()),
                                 TokenSet(universe));
  std::vector<std::int32_t> budget(static_cast<std::size_t>(graph.num_arcs()));
  for (ArcId a = 0; a < graph.num_arcs(); ++a)
    budget[static_cast<std::size_t>(a)] = view.capacity(a);

  std::vector<TokenSet> offered;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const TokenSet& mine = view.own_possession(v);
    const auto in_arcs = graph.in_arcs(v);
    if (in_arcs.empty()) continue;

    // Tokens available from each in-neighbor (per the stale peer view).
    offered.clear();
    offered.reserve(in_arcs.size());
    TokenSet offered_any(universe);
    for (ArcId a : in_arcs) {
      TokenSet tokens = view.peer_possession(v, graph.arc(a).from);
      tokens -= mine;
      offered_any |= tokens;
      offered.push_back(std::move(tokens));
    }
    if (offered_any.empty()) continue;

    std::int64_t total_budget = 0;
    for (ArcId a : in_arcs) total_budget += budget[static_cast<std::size_t>(a)];

    const TokenSet wanted = view.own_want(v) - mine;
    const TokenSet ranked_offered = ranker.to_ranks(offered_any);
    const TokenSet ranked_wanted = ranker.to_ranks(wanted);
    // Two priority passes: wanted tokens first, then pure flood tokens.
    // Only offered tokens can turn into requests, so the scan is over
    // the (ranked) offered set split by wantedness.
    const TokenSet wanted_pool = ranked_offered & ranked_wanted;
    const TokenSet flood_pool = ranked_offered - ranked_wanted;
    for (const TokenSet* pool : {&wanted_pool, &flood_pool}) {
      if (total_budget <= 0) break;
      for (TokenId r = pool->first(); r >= 0; r = pool->next(r + 1)) {
        if (total_budget <= 0) break;
        const TokenId t = ranker.token_at(r);
        // Choose the offering arc with the largest remaining budget
        // (balances load across peers); random tie-break via scan order.
        std::int32_t best = -1;
        std::int32_t best_budget = 0;
        for (std::size_t k = 0; k < in_arcs.size(); ++k) {
          const ArcId a = in_arcs[k];
          if (!offered[k].test(t)) continue;
          const std::int32_t b = budget[static_cast<std::size_t>(a)];
          if (b > best_budget) {
            best_budget = b;
            best = a;
          }
        }
        if (best >= 0) {
          requests[static_cast<std::size_t>(best)].set(t);
          --budget[static_cast<std::size_t>(best)];
          --total_budget;
        }
      }
    }
  }

  // Pass 2 — senders fulfil requests (token presence is guaranteed:
  // the stale view is a subset of current possession).
  bool sent = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (!requests[static_cast<std::size_t>(a)].empty()) {
      plan.send(a, requests[static_cast<std::size_t>(a)]);
      sent = true;
    }
  }
  // No requests can be a legitimate wait: with stale peer knowledge the
  // offers lag behind reality, and progress resumes once the aggregate
  // snapshots age forward.
  if (!sent) plan.mark_idle();
}

}  // namespace ocd::heuristics
