#include "ocd/heuristics/factory.hpp"

#include "ocd/faults/reliable.hpp"
#include "ocd/heuristics/architectures.hpp"
#include "ocd/heuristics/bandwidth_saver.hpp"
#include "ocd/heuristics/global_greedy.hpp"
#include "ocd/heuristics/random_useful.hpp"
#include "ocd/heuristics/rarest_random.hpp"
#include "ocd/heuristics/round_robin.hpp"

namespace ocd::heuristics {

const std::vector<std::string>& all_policy_names() {
  static const std::vector<std::string> names = {
      "round-robin", "random", "local", "bandwidth", "global"};
  return names;
}

sim::PolicyPtr make_policy(std::string_view name) {
  // "<base>+reliable" wraps any registered policy in the sender-side
  // ack/timeout/retransmission adapter (recovery under lossy delivery).
  constexpr std::string_view kReliableSuffix = "+reliable";
  if (name.size() > kReliableSuffix.size() &&
      name.substr(name.size() - kReliableSuffix.size()) == kReliableSuffix) {
    return std::make_unique<faults::ReliableAdapter>(
        make_policy(name.substr(0, name.size() - kReliableSuffix.size())));
  }
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>();
  if (name == "local") return std::make_unique<RarestRandomPolicy>();
  if (name == "bandwidth") return std::make_unique<BandwidthPolicy>();
  if (name == "global") return std::make_unique<GlobalGreedyPolicy>();
  // §2 architecture baselines (not part of the paper's five).
  if (name == "overcast-tree") return std::make_unique<TreePolicy>();
  if (name == "splitstream-forest")
    return std::make_unique<StripedForestPolicy>();
  if (name == "fast-replica") return std::make_unique<FastReplicaPolicy>();
  throw Error("unknown policy name: " + std::string(name));
}

std::vector<sim::PolicyPtr> make_all_policies() {
  std::vector<sim::PolicyPtr> policies;
  for (const std::string& name : all_policy_names())
    policies.push_back(make_policy(name));
  return policies;
}

}  // namespace ocd::heuristics
