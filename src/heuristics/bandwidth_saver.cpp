#include "ocd/heuristics/bandwidth_saver.hpp"

#include <queue>
#include <vector>

#include "ocd/util/rarity.hpp"

namespace ocd::heuristics {

void BandwidthPolicy::plan_step(const sim::StepView& view,
                                sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const auto& possession = view.global_possession();
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  // allowed[v]: tokens v may receive this turn (needs + elected relays).
  std::vector<TokenSet> allowed(n, TokenSet(universe));

  std::vector<std::int32_t> frontier_dist(n);
  std::vector<VertexId> witness(n);
  for (TokenId t = 0; t < view.num_tokens(); ++t) {
    // Needy vertices for t.
    std::vector<VertexId> needy;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (inst.want(v).test(t) &&
          !possession[static_cast<std::size_t>(v)].test(t))
        needy.push_back(v);
    }
    if (needy.empty()) continue;
    for (VertexId v : needy) allowed[static_cast<std::size_t>(v)].set(t);

    // One-hop-knowledge frontier: lacks t, has an in-neighbor holding t.
    std::fill(frontier_dist.begin(), frontier_dist.end(), -1);
    std::queue<VertexId> bfs;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (possession[static_cast<std::size_t>(v)].test(t)) continue;
      for (ArcId a : graph.in_arcs(v)) {
        if (possession[static_cast<std::size_t>(graph.arc(a).from)].test(t)) {
          frontier_dist[static_cast<std::size_t>(v)] = 0;
          witness[static_cast<std::size_t>(v)] = v;
          bfs.push(v);
          break;
        }
      }
    }
    if (bfs.empty()) continue;  // everyone reachable already holds t

    // Multi-source BFS electing, for every vertex, its nearest frontier
    // vertex (ties broken by BFS order — deterministic).
    while (!bfs.empty()) {
      const VertexId u = bfs.front();
      bfs.pop();
      for (ArcId a : graph.out_arcs(u)) {
        const VertexId w = graph.arc(a).to;
        if (frontier_dist[static_cast<std::size_t>(w)] < 0) {
          frontier_dist[static_cast<std::size_t>(w)] =
              frontier_dist[static_cast<std::size_t>(u)] + 1;
          witness[static_cast<std::size_t>(w)] =
              witness[static_cast<std::size_t>(u)];
          bfs.push(w);
        }
      }
    }
    for (VertexId v : needy) {
      if (frontier_dist[static_cast<std::size_t>(v)] >= 0) {
        allowed[static_cast<std::size_t>(witness[static_cast<std::size_t>(v)])]
            .set(t);
      }
    }
  }

  // Senders fill capacity with allowed useful tokens: direct needs
  // before relay tokens, rarest first inside each class.  The fill is a
  // masked-word iteration over rank-space sets (ocd/util/rarity.hpp)
  // rather than a scan of the full rarity order per arc.
  RarityRanker ranker;
  ranker.assign_by_rarity(view.aggregate_holders(), nullptr);

  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    TokenSet candidates = possession[static_cast<std::size_t>(arc.from)];
    candidates -= possession[static_cast<std::size_t>(arc.to)];
    candidates &= allowed[static_cast<std::size_t>(arc.to)];
    if (candidates.empty()) continue;

    const auto capacity = static_cast<std::size_t>(view.capacity(a));
    if (capacity == 0) continue;
    if (candidates.count() <= capacity) {
      plan.send(a, candidates);
      continue;
    }
    const TokenSet ranked_cand = ranker.to_ranks(candidates);
    const TokenSet ranked_needs =
        ranked_cand & ranker.to_ranks(inst.want(arc.to));
    TokenSet batch(universe);
    std::size_t filled = 0;
    const auto take = [&](TokenId r) {
      batch.set(ranker.token_at(r));
      return ++filled < capacity;
    };
    TokenSet::for_each_in_intersection(ranked_cand, ranked_needs, take);
    if (filled < capacity) {
      const TokenSet ranked_flood = ranked_cand - ranked_needs;
      TokenSet::for_each_in_intersection(ranked_cand, ranked_flood, take);
    }
    plan.send(a, batch);
  }
}

}  // namespace ocd::heuristics
