#include "ocd/heuristics/bandwidth_saver.hpp"

#include <algorithm>

#include "ocd/util/binstream.hpp"

namespace ocd::heuristics {

void BandwidthPolicy::reset(const core::Instance& instance, std::uint64_t) {
  const auto n = static_cast<std::size_t>(instance.graph().num_vertices());
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  allowed_.reset(n, universe);
  frontier_dist_.assign(n, -1);
  witness_.assign(n, 0);
  needy_.clear();
  needy_.reserve(n);
  bfs_.clear();
  bfs_.reserve(n);
  candidates_ = TokenSet(universe);
  ranked_cand_ = TokenSet(universe);
  ranked_want_ = TokenSet(universe);
  ranked_needs_ = TokenSet(universe);
  ranked_flood_ = TokenSet(universe);
  batch_ = TokenSet(universe);
}

// The per-token election: needy set, one-hop frontier, multi-source
// BFS electing each needy node's nearest frontier vertex; needy nodes
// and elected relays become the token's allowed receivers.  Reads only
// step-start state and writes only allowed_ rows for `t`, so slicing
// the token loop across shards reproduces the serial matrix exactly.
void BandwidthPolicy::score_token(TokenId t, const sim::StepView& view,
                                  std::vector<VertexId>* receivers) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();

  // Needy vertices for t.
  needy_.clear();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (inst.want(v).test(t) &&
        !possession.row(static_cast<std::size_t>(v)).test(t))
      needy_.push_back(v);
  }
  if (needy_.empty()) return;
  for (VertexId v : needy_) {
    allowed_.row(static_cast<std::size_t>(v)).set(t);
    if (receivers != nullptr) receivers->push_back(v);
  }

  // One-hop-knowledge frontier: lacks t, has an in-neighbor holding t.
  std::fill(frontier_dist_.begin(), frontier_dist_.end(), -1);
  bfs_.clear();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (possession.row(static_cast<std::size_t>(v)).test(t)) continue;
    for (ArcId a : graph.in_arcs(v)) {
      if (possession.row(static_cast<std::size_t>(graph.arc(a).from))
              .test(t)) {
        frontier_dist_[static_cast<std::size_t>(v)] = 0;
        witness_[static_cast<std::size_t>(v)] = v;
        bfs_.push_back(v);
        break;
      }
    }
  }
  if (bfs_.empty()) return;  // everyone reachable already holds t

  // Multi-source BFS electing, for every vertex, its nearest frontier
  // vertex (ties broken by BFS order — deterministic).
  for (std::size_t head = 0; head < bfs_.size(); ++head) {
    const VertexId u = bfs_[head];
    for (ArcId a : graph.out_arcs(u)) {
      const VertexId w = graph.arc(a).to;
      if (frontier_dist_[static_cast<std::size_t>(w)] < 0) {
        frontier_dist_[static_cast<std::size_t>(w)] =
            frontier_dist_[static_cast<std::size_t>(u)] + 1;
        witness_[static_cast<std::size_t>(w)] =
            witness_[static_cast<std::size_t>(u)];
        bfs_.push_back(w);
      }
    }
  }
  for (VertexId v : needy_) {
    if (frontier_dist_[static_cast<std::size_t>(v)] >= 0) {
      const VertexId relay = witness_[static_cast<std::size_t>(v)];
      allowed_.row(static_cast<std::size_t>(relay)).set(t);
      if (receivers != nullptr) receivers->push_back(relay);
    }
  }
}

// The per-arc capacity fill over the finished allowed_ matrix: direct
// needs before relay tokens, rarest first inside each class.  The fill
// is a masked-word iteration over rank-space sets (ocd/util/rarity.hpp)
// rather than a scan of the full rarity order per arc.
void BandwidthPolicy::fill_arc(ArcId a, const sim::StepView& view,
                               sim::StepPlan& plan) {
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();
  const Arc& arc = view.graph().arc(a);
  candidates_.assign(possession.row(static_cast<std::size_t>(arc.from)));
  candidates_ -= possession.row(static_cast<std::size_t>(arc.to));
  candidates_ &= allowed_.row(static_cast<std::size_t>(arc.to));
  if (candidates_.empty()) return;

  const auto capacity = static_cast<std::size_t>(view.capacity(a));
  if (capacity == 0) return;
  if (candidates_.count() <= capacity) {
    plan.send(a, candidates_);
    return;
  }
  ranker_.to_ranks_into(candidates_, ranked_cand_);
  ranker_.to_ranks_into(inst.want(arc.to), ranked_want_);
  ranked_needs_.assign(ranked_cand_);
  ranked_needs_ &= ranked_want_;
  batch_.clear();
  std::size_t filled = 0;
  const auto take = [&](TokenId r) {
    batch_.set(ranker_.token_at(r));
    return ++filled < capacity;
  };
  TokenSet::for_each_in_intersection(ranked_cand_, ranked_needs_, take);
  if (filled < capacity) {
    ranked_flood_.assign(ranked_cand_);
    ranked_flood_ -= ranked_needs_;
    TokenSet::for_each_in_intersection(ranked_cand_, ranked_flood_, take);
  }
  plan.send(a, batch_);
}

// All per-step working sets live in the policy's scratch members (sized
// in reset(), overwritten in place here), so a steady-state step is
// allocation-free.
void BandwidthPolicy::plan_step(const sim::StepView& view,
                                sim::StepPlan& plan) {
  // allowed[v]: tokens v may receive this turn (needs + elected relays).
  allowed_.clear();
  for (TokenId t = 0; t < view.num_tokens(); ++t)
    score_token(t, view, nullptr);

  ranker_.assign_by_rarity(view.aggregate_holders(), nullptr);
  for (ArcId a = 0; a < view.graph().num_arcs(); ++a) fill_arc(a, view, plan);
}

void BandwidthPolicy::begin_coordination(const CoordinationSetup& setup) {
  coord_ = setup;
  const Digraph& graph = setup.instance->graph();
  owned_arcs_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (setup.shard_of[static_cast<std::size_t>(graph.arc(a).from)] ==
        setup.shard)
      owned_arcs_.push_back(a);
  }
  receivers_.clear();
}

// Scores the shard's token slice (t % num_shards == shard) directly
// into allowed_ and encodes the elected receiver sets for the peers.
// Wire format (everything delta-coded, ascending):
//   varint slice_count; per token: varint token_delta (>= 1, from -1);
//   varint receiver_count (>= 1); receiver vertex deltas.
std::int64_t BandwidthPolicy::coord_prescore(const sim::StepView& view,
                                             std::string& frame) {
  allowed_.clear();
  util::BinStream body;
  std::int64_t slices = 0;
  TokenId prev_token = -1;
  for (TokenId t = coord_.shard; t < view.num_tokens();
       t += coord_.num_shards) {
    receivers_.clear();
    score_token(t, view, &receivers_);
    if (receivers_.empty()) continue;
    std::sort(receivers_.begin(), receivers_.end());
    receivers_.erase(std::unique(receivers_.begin(), receivers_.end()),
                     receivers_.end());
    body.put_varint(static_cast<std::uint64_t>(t - prev_token));
    prev_token = t;
    body.put_varint(static_cast<std::uint64_t>(receivers_.size()));
    VertexId prev_v = -1;
    for (const VertexId v : receivers_) {
      body.put_varint(static_cast<std::uint64_t>(v - prev_v));
      prev_v = v;
    }
    ++slices;
  }
  util::BinStream bs;
  bs.put_varint(static_cast<std::uint64_t>(slices));
  const std::string tail = std::move(body).take();
  bs.put_bytes(tail.data(), tail.size());
  frame = std::move(bs).take();
  return slices;
}

bool BandwidthPolicy::coord_absorb(const sim::StepView& view,
                                   std::span<const std::string> frames) {
  const auto n = static_cast<std::int64_t>(view.graph().num_vertices());
  const auto universe = static_cast<std::int64_t>(view.num_tokens());
  for (std::int32_t p = 0; p < coord_.num_shards; ++p) {
    if (p == coord_.shard) continue;
    util::BinStream in(frames[static_cast<std::size_t>(p)]);
    const std::uint64_t slices = in.get_varint("allow.slices");
    in.require(slices <= static_cast<std::uint64_t>(universe), "allow.slices",
               "more token slices than tokens");
    TokenId prev_token = -1;
    for (std::uint64_t i = 0; i < slices; ++i) {
      const std::uint64_t td = in.get_varint("allow.token");
      in.require(td >= 1 && prev_token + static_cast<std::int64_t>(td) <
                                universe,
                 "allow.token", "tokens must be increasing and in range");
      const auto t =
          static_cast<TokenId>(prev_token + static_cast<std::int64_t>(td));
      prev_token = t;
      in.require(t % coord_.num_shards == p, "allow.token",
                 "token outside the sender's slice");
      const std::uint64_t count = in.get_varint("allow.receivers");
      in.require(count >= 1 && count <= static_cast<std::uint64_t>(n),
                 "allow.receivers", "receiver count out of range");
      VertexId prev_v = -1;
      for (std::uint64_t j = 0; j < count; ++j) {
        const std::uint64_t vd = in.get_varint("allow.vertex");
        in.require(vd >= 1 && prev_v + static_cast<std::int64_t>(vd) < n,
                   "allow.vertex",
                   "receivers must be increasing and in range");
        prev_v = static_cast<VertexId>(prev_v + static_cast<std::int64_t>(vd));
        allowed_.row(static_cast<std::size_t>(prev_v)).set(t);
      }
    }
    in.require(in.exhausted(), "allow.frame", "trailing bytes");
  }
  return false;  // the sliced election is exact; no fallback exists
}

// The serial arc loop is arc-ascending, so the owned slice emitted
// here concatenates across shards (sorted by arc id in the fragment
// merge) into exactly the plan_step send order — no ordinals needed.
void BandwidthPolicy::coord_emit(const sim::StepView& view,
                                 sim::StepPlan& plan,
                                 std::vector<std::int64_t>& /*ordinals*/) {
  ranker_.assign_by_rarity(view.aggregate_holders(), nullptr);
  for (const ArcId a : owned_arcs_) fill_arc(a, view, plan);
}

}  // namespace ocd::heuristics
