#include "ocd/heuristics/bandwidth_saver.hpp"

#include <algorithm>

namespace ocd::heuristics {

void BandwidthPolicy::reset(const core::Instance& instance, std::uint64_t) {
  const auto n = static_cast<std::size_t>(instance.graph().num_vertices());
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  allowed_.reset(n, universe);
  frontier_dist_.assign(n, -1);
  witness_.assign(n, 0);
  needy_.clear();
  needy_.reserve(n);
  bfs_.clear();
  bfs_.reserve(n);
  candidates_ = TokenSet(universe);
  ranked_cand_ = TokenSet(universe);
  ranked_want_ = TokenSet(universe);
  ranked_needs_ = TokenSet(universe);
  ranked_flood_ = TokenSet(universe);
  batch_ = TokenSet(universe);
}

// All per-step working sets live in the policy's scratch members (sized
// in reset(), overwritten in place here), so a steady-state step is
// allocation-free.
void BandwidthPolicy::plan_step(const sim::StepView& view,
                                sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();

  // allowed[v]: tokens v may receive this turn (needs + elected relays).
  allowed_.clear();

  for (TokenId t = 0; t < view.num_tokens(); ++t) {
    // Needy vertices for t.
    needy_.clear();
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (inst.want(v).test(t) &&
          !possession.row(static_cast<std::size_t>(v)).test(t))
        needy_.push_back(v);
    }
    if (needy_.empty()) continue;
    for (VertexId v : needy_) allowed_.row(static_cast<std::size_t>(v)).set(t);

    // One-hop-knowledge frontier: lacks t, has an in-neighbor holding t.
    std::fill(frontier_dist_.begin(), frontier_dist_.end(), -1);
    bfs_.clear();
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (possession.row(static_cast<std::size_t>(v)).test(t)) continue;
      for (ArcId a : graph.in_arcs(v)) {
        if (possession.row(static_cast<std::size_t>(graph.arc(a).from))
                .test(t)) {
          frontier_dist_[static_cast<std::size_t>(v)] = 0;
          witness_[static_cast<std::size_t>(v)] = v;
          bfs_.push_back(v);
          break;
        }
      }
    }
    if (bfs_.empty()) continue;  // everyone reachable already holds t

    // Multi-source BFS electing, for every vertex, its nearest frontier
    // vertex (ties broken by BFS order — deterministic).
    for (std::size_t head = 0; head < bfs_.size(); ++head) {
      const VertexId u = bfs_[head];
      for (ArcId a : graph.out_arcs(u)) {
        const VertexId w = graph.arc(a).to;
        if (frontier_dist_[static_cast<std::size_t>(w)] < 0) {
          frontier_dist_[static_cast<std::size_t>(w)] =
              frontier_dist_[static_cast<std::size_t>(u)] + 1;
          witness_[static_cast<std::size_t>(w)] =
              witness_[static_cast<std::size_t>(u)];
          bfs_.push_back(w);
        }
      }
    }
    for (VertexId v : needy_) {
      if (frontier_dist_[static_cast<std::size_t>(v)] >= 0) {
        allowed_
            .row(static_cast<std::size_t>(
                witness_[static_cast<std::size_t>(v)]))
            .set(t);
      }
    }
  }

  // Senders fill capacity with allowed useful tokens: direct needs
  // before relay tokens, rarest first inside each class.  The fill is a
  // masked-word iteration over rank-space sets (ocd/util/rarity.hpp)
  // rather than a scan of the full rarity order per arc.
  ranker_.assign_by_rarity(view.aggregate_holders(), nullptr);

  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    candidates_.assign(possession.row(static_cast<std::size_t>(arc.from)));
    candidates_ -= possession.row(static_cast<std::size_t>(arc.to));
    candidates_ &= allowed_.row(static_cast<std::size_t>(arc.to));
    if (candidates_.empty()) continue;

    const auto capacity = static_cast<std::size_t>(view.capacity(a));
    if (capacity == 0) continue;
    if (candidates_.count() <= capacity) {
      plan.send(a, candidates_);
      continue;
    }
    ranker_.to_ranks_into(candidates_, ranked_cand_);
    ranker_.to_ranks_into(inst.want(arc.to), ranked_want_);
    ranked_needs_.assign(ranked_cand_);
    ranked_needs_ &= ranked_want_;
    batch_.clear();
    std::size_t filled = 0;
    const auto take = [&](TokenId r) {
      batch_.set(ranker_.token_at(r));
      return ++filled < capacity;
    };
    TokenSet::for_each_in_intersection(ranked_cand_, ranked_needs_, take);
    if (filled < capacity) {
      ranked_flood_.assign(ranked_cand_);
      ranked_flood_ -= ranked_needs_;
      TokenSet::for_each_in_intersection(ranked_cand_, ranked_flood_, take);
    }
    plan.send(a, batch_);
  }
}

}  // namespace ocd::heuristics
