#include "ocd/heuristics/architectures.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace ocd::heuristics {

namespace {

/// Root selection: the vertex holding the most tokens (the "source").
VertexId richest_vertex(const core::Instance& inst) {
  VertexId best = 0;
  std::size_t best_count = inst.have(0).count();
  for (VertexId v = 1; v < inst.num_vertices(); ++v) {
    if (inst.have(v).count() > best_count) {
      best_count = inst.have(v).count();
      best = v;
    }
  }
  return best;
}

/// Widest-path (maximum bottleneck) spanning tree rooted at `root`,
/// Prim-style.  Returns each vertex's parent arc (-1 for root /
/// unreachable).
std::vector<ArcId> widest_spanning_tree(const Digraph& graph, VertexId root) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<std::int32_t> best_width(n, -1);
  std::vector<ArcId> parent_arc(n, -1);
  std::vector<bool> in_tree(n, false);
  using Item = std::pair<std::int32_t, VertexId>;  // (width, vertex)
  std::priority_queue<Item> frontier;
  best_width[static_cast<std::size_t>(root)] =
      std::numeric_limits<std::int32_t>::max();
  frontier.push({best_width[static_cast<std::size_t>(root)], root});
  while (!frontier.empty()) {
    const auto [width, v] = frontier.top();
    frontier.pop();
    if (in_tree[static_cast<std::size_t>(v)]) continue;
    in_tree[static_cast<std::size_t>(v)] = true;
    for (ArcId a : graph.out_arcs(v)) {
      const Arc& arc = graph.arc(a);
      const std::int32_t bottleneck = std::min(width, arc.capacity);
      auto& best = best_width[static_cast<std::size_t>(arc.to)];
      if (!in_tree[static_cast<std::size_t>(arc.to)] && bottleneck > best) {
        best = bottleneck;
        parent_arc[static_cast<std::size_t>(arc.to)] = a;
        frontier.push({bottleneck, arc.to});
      }
    }
  }
  return parent_arc;
}

/// Randomized BFS tree rooted at `root` (neighbor order shuffled per
/// tree) — the stripe-diversification device.
std::vector<ArcId> randomized_bfs_tree(const Digraph& graph, VertexId root,
                                       Rng& rng) {
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  std::vector<ArcId> parent_arc(n, -1);
  std::vector<bool> seen(n, false);
  seen[static_cast<std::size_t>(root)] = true;
  std::vector<VertexId> frontier{root};
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    rng.shuffle(frontier);
    for (VertexId v : frontier) {
      std::vector<ArcId> out(graph.out_arcs(v).begin(),
                             graph.out_arcs(v).end());
      rng.shuffle(out);
      for (ArcId a : out) {
        const VertexId w = graph.arc(a).to;
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          parent_arc[static_cast<std::size_t>(w)] = a;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  return parent_arc;
}

/// Marks both directions of each parent arc in `allowed`.
template <typename MarkFn>
void mark_tree_arcs(const Digraph& graph, const std::vector<ArcId>& parents,
                    MarkFn&& mark) {
  for (ArcId a : parents) {
    if (a < 0) continue;
    mark(a);
    const Arc& arc = graph.arc(a);
    const ArcId reverse = graph.find_arc(arc.to, arc.from);
    if (reverse >= 0) mark(reverse);
  }
}

/// Flood useful tokens along permitted arcs (shared by both policies).
/// `allowed_tokens(a)` filters what an arc may carry.
template <typename AllowedFn>
bool flood_along(const sim::StepView& view, sim::StepPlan& plan,
                 AllowedFn&& allowed_tokens) {
  const Digraph& graph = view.graph();
  bool sent = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const auto capacity = static_cast<std::size_t>(view.capacity(a));
    if (capacity == 0) continue;
    const Arc& arc = graph.arc(a);
    TokenSet useful = allowed_tokens(a);
    if (useful.empty()) continue;
    useful &= view.own_possession(arc.from);
    useful -= view.peer_possession(arc.from, arc.to);
    if (useful.empty()) continue;
    if (useful.count() > capacity) useful.truncate(capacity);
    plan.send(a, useful);
    sent = true;
  }
  return sent;
}

}  // namespace

// ---------------------------------------------------------------------
// TreePolicy
// ---------------------------------------------------------------------
void TreePolicy::reset(const core::Instance& inst, std::uint64_t) {
  arc_in_tree_.assign(static_cast<std::size_t>(inst.graph().num_arcs()),
                      false);
  tree_arcs_.clear();
  const auto parents =
      widest_spanning_tree(inst.graph(), richest_vertex(inst));
  mark_tree_arcs(inst.graph(), parents, [&](ArcId a) {
    if (!arc_in_tree_[static_cast<std::size_t>(a)]) {
      arc_in_tree_[static_cast<std::size_t>(a)] = true;
      tree_arcs_.push_back(a);
    }
  });
}

void TreePolicy::plan_step(const sim::StepView& view, sim::StepPlan& plan) {
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const bool sent = flood_along(view, plan, [&](ArcId a) {
    return arc_in_tree_[static_cast<std::size_t>(a)]
               ? TokenSet::full(universe)
               : TokenSet(universe);
  });
  if (!sent) plan.mark_idle();
}

// ---------------------------------------------------------------------
// StripedForestPolicy
// ---------------------------------------------------------------------
StripedForestPolicy::StripedForestPolicy(std::int32_t stripes)
    : stripes_(stripes) {
  OCD_EXPECTS(stripes >= 1 && stripes <= 32);
}

void StripedForestPolicy::reset(const core::Instance& inst,
                                std::uint64_t seed) {
  Rng rng(seed ^ 0x57717e5ULL);
  arc_stripes_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), 0);
  const VertexId root = richest_vertex(inst);
  for (std::int32_t s = 0; s < stripes_; ++s) {
    const auto parents = randomized_bfs_tree(inst.graph(), root, rng);
    mark_tree_arcs(inst.graph(), parents, [&](ArcId a) {
      arc_stripes_[static_cast<std::size_t>(a)] |= 1u << s;
    });
  }
  // Stripe membership of each token: token t belongs to stripe t mod k.
  stripe_tokens_.assign(static_cast<std::size_t>(stripes_),
                        TokenSet(static_cast<std::size_t>(inst.num_tokens())));
  for (TokenId t = 0; t < inst.num_tokens(); ++t)
    stripe_tokens_[static_cast<std::size_t>(t % stripes_)].set(t);
}

void StripedForestPolicy::plan_step(const sim::StepView& view,
                                    sim::StepPlan& plan) {
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const bool sent = flood_along(view, plan, [&](ArcId a) {
    TokenSet allowed(universe);
    const std::uint32_t mask = arc_stripes_[static_cast<std::size_t>(a)];
    for (std::int32_t s = 0; s < stripes_; ++s) {
      if ((mask >> s) & 1u) allowed |= stripe_tokens_[static_cast<std::size_t>(s)];
    }
    return allowed;
  });
  if (!sent) plan.mark_idle();
}

// ---------------------------------------------------------------------
// FastReplicaPolicy
// ---------------------------------------------------------------------
void FastReplicaPolicy::reset(const core::Instance& inst, std::uint64_t) {
  source_ = richest_vertex(inst);
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  const auto out = inst.graph().out_arcs(source_);
  block_of_arc_.assign(static_cast<std::size_t>(inst.graph().num_arcs()),
                       TokenSet(universe));
  if (out.empty()) return;
  // Partition the source's tokens into |out| nearly equal blocks, one
  // per out-arc (the FastReplica scatter plan).
  const auto tokens = inst.have(source_).to_vector();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const ArcId arc = out[i % out.size()];
    block_of_arc_[static_cast<std::size_t>(arc)].set(tokens[i]);
  }
}

void FastReplicaPolicy::plan_step(const sim::StepView& view,
                                  sim::StepPlan& plan) {
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const bool sent = flood_along(view, plan, [&](ArcId a) {
    // Scatter discipline: while an arc's own block is still undelivered
    // the source pushes only that block; afterwards the source joins
    // the collect phase as an ordinary exchanger (necessary when its
    // neighbors interconnect only through it).  Every other vertex
    // exchanges everything it has.
    const Arc& arc = view.graph().arc(a);
    if (arc.from == source_) {
      TokenSet outstanding = block_of_arc_[static_cast<std::size_t>(a)];
      outstanding -= view.peer_possession(source_, arc.to);
      if (!outstanding.empty())
        return block_of_arc_[static_cast<std::size_t>(a)];
    }
    return TokenSet::full(universe);
  });
  if (!sent) plan.mark_idle();
}

const std::vector<std::string>& extended_policy_names() {
  static const std::vector<std::string> names = {
      "round-robin", "random",        "local",
      "bandwidth",   "global",        "overcast-tree",
      "splitstream-forest", "fast-replica"};
  return names;
}

}  // namespace ocd::heuristics
