#include "ocd/heuristics/round_robin.hpp"

#include "ocd/util/binstream.hpp"

namespace ocd::heuristics {

void RoundRobinPolicy::reset(const core::Instance& inst, std::uint64_t) {
  cursor_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), -1);
  batch_ = TokenSet(static_cast<std::size_t>(inst.num_tokens()));
}

void RoundRobinPolicy::plan_vertex(VertexId self, const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const TokenSetView mine = view.own_possession(self);
  if (mine.empty()) return;
  const auto held = static_cast<std::int64_t>(mine.count());

  for (ArcId arc_id : view.graph().out_arcs(self)) {
    const std::int64_t to_send =
        std::min<std::int64_t>(view.capacity(arc_id), held);
    if (to_send == 0) continue;
    batch_.clear();
    TokenId position = cursor_[static_cast<std::size_t>(arc_id)];
    for (std::int64_t k = 0; k < to_send; ++k) {
      position = mine.next_circular(position + 1);
      OCD_ASSERT(position >= 0);
      batch_.set(position);
    }
    cursor_[static_cast<std::size_t>(arc_id)] = position;
    plan.send(arc_id, batch_);
  }
}

void RoundRobinPolicy::save_state(util::BinStream& out) const {
  out.put_varint(cursor_.size());
  for (TokenId c : cursor_) out.put_varint_signed(c);
}

void RoundRobinPolicy::load_state(util::BinStream& in) {
  const std::uint64_t count = in.get_varint("round-robin.cursors");
  in.require(count == cursor_.size(), "round-robin.cursors",
             "cursor count does not match the arc count");
  for (TokenId& c : cursor_) {
    const std::int64_t v = in.get_varint_signed("round-robin.cursor");
    in.require(v >= -1, "round-robin.cursor", "cursor below -1");
    c = static_cast<TokenId>(v);
  }
}

}  // namespace ocd::heuristics
