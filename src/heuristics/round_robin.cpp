#include "ocd/heuristics/round_robin.hpp"

namespace ocd::heuristics {

void RoundRobinPolicy::reset(const core::Instance& inst, std::uint64_t) {
  cursor_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), -1);
  batch_ = TokenSet(static_cast<std::size_t>(inst.num_tokens()));
}

void RoundRobinPolicy::plan_vertex(VertexId self, const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const TokenSetView mine = view.own_possession(self);
  if (mine.empty()) return;
  const auto held = static_cast<std::int64_t>(mine.count());

  for (ArcId arc_id : view.graph().out_arcs(self)) {
    const std::int64_t to_send =
        std::min<std::int64_t>(view.capacity(arc_id), held);
    if (to_send == 0) continue;
    batch_.clear();
    TokenId position = cursor_[static_cast<std::size_t>(arc_id)];
    for (std::int64_t k = 0; k < to_send; ++k) {
      position = mine.next_circular(position + 1);
      OCD_ASSERT(position >= 0);
      batch_.set(position);
    }
    cursor_[static_cast<std::size_t>(arc_id)] = position;
    plan.send(arc_id, batch_);
  }
}

}  // namespace ocd::heuristics
