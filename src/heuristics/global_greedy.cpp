#include "ocd/heuristics/global_greedy.hpp"

#include <algorithm>

#include "ocd/util/parallel.hpp"

namespace ocd::heuristics {

namespace {

/// Engage the sharded wave scan only when a pass visits at least this
/// many awake arcs; below it the pool wake-up costs more than the scan.
/// A pure perf knob: the schedule is bit-identical either way.
constexpr std::size_t kParallelWaveMinArcs = 256;

/// Items per chunk for the step-start row rebuilds.
constexpr std::size_t kVertexGrain = 16;
constexpr std::size_t kArcGrain = 64;

/// One arc's fused candidate scan against (cand, out, wave_ok):
/// `wanted` is the first wanted in-cap candidate (rank), `flood` the
/// first in-cap candidate of any kind, `cand_left` ORs every candidate
/// word seen before the wanted hit — nonzero means candidates remain
/// (only meaningful when both picks are -1, i.e. the scan ran through).
struct ArcScan {
  TokenId wanted = -1;
  TokenId flood = -1;
  std::uint64_t cand_left = 0;
};

ArcScan scan_arc(const std::uint64_t* cand_w, const std::uint64_t* out_w,
                 const std::uint64_t* ok_w, std::size_t num_words) {
  ArcScan r;
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    const std::uint64_t cw = cand_w[wi];
    r.cand_left |= cw;
    const std::uint64_t in_cap = cw & ok_w[wi];
    if (in_cap == 0) continue;
    const std::uint64_t wanted = in_cap & out_w[wi];
    if (wanted != 0) {
      r.wanted = static_cast<TokenId>(
          wi * 64 + static_cast<std::size_t>(__builtin_ctzll(wanted)));
      return r;
    }
    if (r.flood < 0)
      r.flood = static_cast<TokenId>(
          wi * 64 + static_cast<std::size_t>(__builtin_ctzll(in_cap)));
  }
  return r;
}

}  // namespace

void GlobalGreedyPolicy::reset(const core::Instance& instance,
                               std::uint64_t seed) {
  rng_ = Rng(seed);
  const auto n = static_cast<std::size_t>(instance.graph().num_vertices());
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(instance.graph().num_arcs());
  ranked_poss_.reset(n, universe);
  candidates_.reset(num_arcs, universe);
  outstanding_.reset(n, universe);
  remaining_.assign(num_arcs, 0);
  grant_count_.assign(universe, 0);
  full_ = TokenSet::full(universe);
  wave_ok_ = TokenSet(universe);
  capped_ = TokenSet(universe);
  active_.clear();
  active_.reserve(num_arcs);
  asleep_.assign(num_arcs, 0);
  scan_wanted_.assign(num_arcs, -1);
  scan_flood_.assign(num_arcs, -1);
}

// Coordinated greedy over (arc, token) pairs.  Assignment proceeds in
// passes; during pass w a token may hold at most w+1 grants, which
// spreads *different* rare tokens across the arcs (diversity) instead of
// pushing the single rarest token everywhere.  Wanted deliveries are
// preferred over pure diversity floods at every pick, and a token is
// never delivered twice to the same vertex (the coordination the paper
// describes).
//
// All per-step sets live in rank space (bit r = token at rarity rank r,
// see ocd/util/rarity.hpp), so each pick is a first-set-bit over
// `cand_words & wanted_words & wave_ok_words` instead of an O(universe)
// scan of the rarity order.  Per-arc candidate sets are maintained
// incrementally: granting a token to a vertex clears its bit from every
// in-arc of that vertex, and arcs whose candidates or capacity are
// exhausted leave the active list for good (both only shrink).
//
// Parallel execution (ISSUE 5): the step-start row rebuilds shard over
// disjoint matrix rows, and each big pass runs a two-phase scan-then-
// merge.  Phase A shards the awake arcs into fixed chunks and scores
// each against the PASS-START state (reads only) into per-arc slots of
// the scan_wanted_/scan_flood_ scratch.  Phase B walks the arcs in the
// serial order and applies picks: because candidate and wave_ok masks
// only SHRINK within a pass, a pre-scored pick that is still present in
// both masks is provably the pick the serial scan would make (earlier
// bits cannot reappear, wanted candidates cannot appear), so it is used
// as-is; a pick invalidated by an earlier merge step falls back to the
// exact serial rescan.  Every pick, tie-break and sleep/drop decision
// is therefore bit-identical to the serial path for any OCD_JOBS.
//
// Every working set lives in the policy's scratch members (sized in
// reset(), overwritten in place here), so a steady-state step is
// allocation-free on both the serial and the sharded path.
void GlobalGreedyPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());

  ranker_.assign_by_rarity(view.aggregate_holders(), &rng_);

  // Possession permuted once per step; every other rank-space set is a
  // word-parallel combination of these.  Disjoint rows per chunk.
  util::parallel_for(n, kVertexGrain, [&](util::ChunkRange c) {
    for (std::size_t vi = c.begin; vi < c.end; ++vi)
      ranker_.to_ranks_into(possession.row(vi), ranked_poss_.row(vi));
  });

  // Per-arc candidates (tail has, head lacks) and remaining capacity.
  const bool anything = util::parallel_reduce(
      num_arcs, kArcGrain, false,
      [&](util::ChunkRange c) {
        bool any = false;
        for (std::size_t ai = c.begin; ai < c.end; ++ai) {
          const Arc& arc = graph.arc(static_cast<ArcId>(ai));
          MutableTokenSetView cand = candidates_.row(ai);
          cand.assign(ranked_poss_.row(static_cast<std::size_t>(arc.from)));
          cand -= ranked_poss_.row(static_cast<std::size_t>(arc.to));
          any = any || !cand.empty();
          remaining_[ai] = view.capacity(static_cast<ArcId>(ai));
        }
        return any;
      },
      [](bool acc, bool chunk) { return acc || chunk; });
  if (!anything) return;

  // Outstanding wants per vertex, fixed at step start.
  util::parallel_for(n, kVertexGrain, [&](util::ChunkRange c) {
    for (std::size_t vi = c.begin; vi < c.end; ++vi) {
      MutableTokenSetView out = outstanding_.row(vi);
      ranker_.to_ranks_into(inst.want(static_cast<VertexId>(vi)), out);
      out -= ranked_poss_.row(vi);
    }
  });

  // wave_ok holds the ranks whose grant count is still <= wave; ranks
  // pushed over the cap park in `capped` until the next wave relaxes it.
  std::fill(grant_count_.begin(), grant_count_.end(), 0);
  wave_ok_.assign(full_);
  capped_.clear();

  active_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    if (remaining_[ai] > 0 && !candidates_.row(ai).empty())
      active_.push_back(a);
  }

  // An arc whose candidates are all over the duplication cap cannot pick
  // again until the cap relaxes (its candidate set and wave_ok only
  // shrink within a wave), so instead of rescanning it every pass it
  // falls asleep and skips to the next relaxation: one flag check per
  // pass instead of a full word scan.  The pick sequence — and hence the
  // schedule — is identical to rescanning everything, because a sleeping
  // arc could never have picked in the passes it skips, and it keeps its
  // slot in the list so the scan order never changes.
  const std::size_t num_words = wave_ok_.words().size();
  const std::uint64_t* ok_w = wave_ok_.words().data();
  const bool sharded = util::parallel_active();
  std::int32_t wave = 0;
  std::size_t awake = active_.size();
  while (!active_.empty()) {
    if (awake == 0) {
      // Every surviving arc is capped: the full rescan would be a
      // no-progress pass.  Relax the cap and wake everyone.
      ++wave;
      wave_ok_ |= capped_;
      capped_.clear();
      for (const ArcId a : active_) asleep_[static_cast<std::size_t>(a)] = 0;
      awake = active_.size();
    }

    // Phase A: pre-score every awake arc against the pass-start state.
    // Reads candidates_/outstanding_/wave_ok_ only; writes disjoint
    // per-arc slots, so the result is independent of scheduling.
    const bool prescored = sharded && awake >= kParallelWaveMinArcs;
    if (prescored) {
      util::parallel_for(active_.size(), kArcGrain, [&](util::ChunkRange c) {
        for (std::size_t p = c.begin; p < c.end; ++p) {
          const auto ai = static_cast<std::size_t>(active_[p]);
          if (asleep_[ai]) continue;
          const Arc& arc = graph.arc(active_[p]);
          const ArcScan scan = scan_arc(
              candidates_.row(ai).words_data(),
              outstanding_.row(static_cast<std::size_t>(arc.to)).words_data(),
              ok_w, num_words);
          scan_wanted_[ai] = scan.wanted;
          scan_flood_[ai] = scan.flood;
        }
      });
    }

    // Phase B (and the whole pass when not sharded): serial merge in
    // the fixed arc order, with the serial rescan as the slow path.
    std::size_t kept = 0;
    for (std::size_t p = 0; p < active_.size(); ++p) {
      const ArcId a = active_[p];
      const auto ai = static_cast<std::size_t>(a);
      if (asleep_[ai]) {
        active_[kept++] = a;
        continue;
      }
      const Arc& arc = graph.arc(a);
      const TokenSetView cand = candidates_.row(ai);

      TokenId pick = -1;
      bool resolved = false;
      bool cand_nonempty = false;
      if (prescored) {
        // A pre-scored pick still present in the (only-shrinking) masks
        // is exactly what the serial rescan would return.
        const TokenId wanted = scan_wanted_[ai];
        const TokenId flood = scan_flood_[ai];
        if (wanted >= 0) {
          if (cand.test(wanted) && wave_ok_.test(wanted)) {
            pick = wanted;
            resolved = true;
          }
        } else if (flood >= 0) {
          if (cand.test(flood) && wave_ok_.test(flood)) {
            pick = flood;
            resolved = true;
          }
        } else {
          // Nothing in cap at pass start and masks only shrank: the
          // rescan could not find a pick either.  Candidates may have
          // been granted away since the pre-score, so consult the
          // current set for the sleep-vs-drop call.
          pick = -1;
          resolved = true;
          cand_nonempty = !cand.empty();
        }
      }
      if (!resolved) {
        const ArcScan scan = scan_arc(
            cand.words_data(),
            outstanding_.row(static_cast<std::size_t>(arc.to)).words_data(),
            ok_w, num_words);
        pick = scan.wanted >= 0 ? scan.wanted : scan.flood;
        cand_nonempty = scan.cand_left != 0;
      }

      if (pick < 0) {
        // Candidates left means they are all capped: sleep until the
        // next relaxation.  None left means the arc is done for good.
        --awake;
        if (cand_nonempty) {
          asleep_[ai] = 1;
          active_[kept++] = a;
        }
        continue;
      }

      plan.send(a, ranker_.token_at(pick), universe);
      if (++grant_count_[static_cast<std::size_t>(pick)] > wave) {
        wave_ok_.reset(pick);
        capped_.set(pick);
      }
      // The head now holds (a grant of) this token: no arc into it may
      // offer the token again this step.
      for (const ArcId b : graph.in_arcs(arc.to))
        candidates_.row(static_cast<std::size_t>(b)).reset(pick);
      if (--remaining_[ai] > 0) {
        active_[kept++] = a;
      } else {
        --awake;  // capacity exhausted: the arc leaves for good
      }
    }
    active_.resize(kept);
  }
}

}  // namespace ocd::heuristics
