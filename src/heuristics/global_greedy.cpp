#include "ocd/heuristics/global_greedy.hpp"

#include <algorithm>

namespace ocd::heuristics {

void GlobalGreedyPolicy::reset(const core::Instance& instance,
                               std::uint64_t seed) {
  rng_ = Rng(seed);
  const auto n = static_cast<std::size_t>(instance.graph().num_vertices());
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(instance.graph().num_arcs());
  ranked_poss_.reset(n, universe);
  candidates_.reset(num_arcs, universe);
  outstanding_.reset(n, universe);
  remaining_.assign(num_arcs, 0);
  grant_count_.assign(universe, 0);
  full_ = TokenSet::full(universe);
  wave_ok_ = TokenSet(universe);
  capped_ = TokenSet(universe);
  active_.clear();
  active_.reserve(num_arcs);
  asleep_.assign(num_arcs, 0);
}

// Coordinated greedy over (arc, token) pairs.  Assignment proceeds in
// passes; during pass w a token may hold at most w+1 grants, which
// spreads *different* rare tokens across the arcs (diversity) instead of
// pushing the single rarest token everywhere.  Wanted deliveries are
// preferred over pure diversity floods at every pick, and a token is
// never delivered twice to the same vertex (the coordination the paper
// describes).
//
// All per-step sets live in rank space (bit r = token at rarity rank r,
// see ocd/util/rarity.hpp), so each pick is a first-set-bit over
// `cand_words & wanted_words & wave_ok_words` instead of an O(universe)
// scan of the rarity order.  Per-arc candidate sets are maintained
// incrementally: granting a token to a vertex clears its bit from every
// in-arc of that vertex, and arcs whose candidates or capacity are
// exhausted leave the active list for good (both only shrink).
//
// Every working set lives in the policy's scratch members (sized in
// reset(), overwritten in place here), so a steady-state step is
// allocation-free.
void GlobalGreedyPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  ranker_.assign_by_rarity(view.aggregate_holders(), &rng_);

  // Possession permuted once per step; every other rank-space set is a
  // word-parallel combination of these.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    ranker_.to_ranks_into(possession.row(vi), ranked_poss_.row(vi));
  }

  // Per-arc candidates (tail has, head lacks) and remaining capacity.
  bool anything = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    const auto ai = static_cast<std::size_t>(a);
    MutableTokenSetView cand = candidates_.row(ai);
    cand.assign(ranked_poss_.row(static_cast<std::size_t>(arc.from)));
    cand -= ranked_poss_.row(static_cast<std::size_t>(arc.to));
    anything = anything || !cand.empty();
    remaining_[ai] = view.capacity(a);
  }
  if (!anything) return;

  // Outstanding wants per vertex, fixed at step start.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    MutableTokenSetView out = outstanding_.row(vi);
    ranker_.to_ranks_into(inst.want(v), out);
    out -= ranked_poss_.row(vi);
  }

  // wave_ok holds the ranks whose grant count is still <= wave; ranks
  // pushed over the cap park in `capped` until the next wave relaxes it.
  std::fill(grant_count_.begin(), grant_count_.end(), 0);
  wave_ok_.assign(full_);
  capped_.clear();

  active_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    if (remaining_[ai] > 0 && !candidates_.row(ai).empty())
      active_.push_back(a);
  }

  // An arc whose candidates are all over the duplication cap cannot pick
  // again until the cap relaxes (its candidate set and wave_ok only
  // shrink within a wave), so instead of rescanning it every pass it
  // falls asleep and skips to the next relaxation: one flag check per
  // pass instead of a full word scan.  The pick sequence — and hence the
  // schedule — is identical to rescanning everything, because a sleeping
  // arc could never have picked in the passes it skips, and it keeps its
  // slot in the list so the scan order never changes.
  const std::size_t num_words = wave_ok_.words().size();
  const std::uint64_t* ok_w = wave_ok_.words().data();
  std::int32_t wave = 0;
  std::size_t awake = active_.size();
  while (!active_.empty()) {
    if (awake == 0) {
      // Every surviving arc is capped: the full rescan would be a
      // no-progress pass.  Relax the cap and wake everyone.
      ++wave;
      wave_ok_ |= capped_;
      capped_.clear();
      for (const ArcId a : active_) asleep_[static_cast<std::size_t>(a)] = 0;
      awake = active_.size();
    }
    std::size_t kept = 0;
    for (const ArcId a : active_) {
      const auto ai = static_cast<std::size_t>(a);
      if (asleep_[ai]) {
        active_[kept++] = a;
        continue;
      }
      const Arc& arc = graph.arc(a);
      const std::uint64_t* cand_w = candidates_.row(ai).words_data();
      const std::uint64_t* out_w =
          outstanding_.row(static_cast<std::size_t>(arc.to)).words_data();

      // One fused scan: the first wanted in-cap candidate wins; the
      // first in-cap candidate of any kind is the diversity-flood
      // fallback.
      TokenId pick = -1;
      TokenId flood = -1;
      std::uint64_t cand_left = 0;
      for (std::size_t wi = 0; wi < num_words; ++wi) {
        const std::uint64_t cw = cand_w[wi];
        cand_left |= cw;
        const std::uint64_t in_cap = cw & ok_w[wi];
        if (in_cap == 0) continue;
        const std::uint64_t wanted = in_cap & out_w[wi];
        if (wanted != 0) {
          pick = static_cast<TokenId>(
              wi * 64 + static_cast<std::size_t>(__builtin_ctzll(wanted)));
          break;
        }
        if (flood < 0)
          flood = static_cast<TokenId>(
              wi * 64 + static_cast<std::size_t>(__builtin_ctzll(in_cap)));
      }
      if (pick < 0) pick = flood;
      if (pick < 0) {
        // Candidates left means they are all capped: sleep until the
        // next relaxation.  None left means the arc is done for good.
        --awake;
        if (cand_left != 0) {
          asleep_[ai] = 1;
          active_[kept++] = a;
        }
        continue;
      }

      plan.send(a, ranker_.token_at(pick), universe);
      if (++grant_count_[static_cast<std::size_t>(pick)] > wave) {
        wave_ok_.reset(pick);
        capped_.set(pick);
      }
      // The head now holds (a grant of) this token: no arc into it may
      // offer the token again this step.
      for (const ArcId b : graph.in_arcs(arc.to))
        candidates_.row(static_cast<std::size_t>(b)).reset(pick);
      if (--remaining_[ai] > 0) {
        active_[kept++] = a;
      } else {
        --awake;  // capacity exhausted: the arc leaves for good
      }
    }
    active_.resize(kept);
  }
}

}  // namespace ocd::heuristics
