#include "ocd/heuristics/global_greedy.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace ocd::heuristics {

void GlobalGreedyPolicy::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed);
}

// Coordinated greedy over (arc, token) pairs.  Assignment proceeds in
// passes; during pass w a token may hold at most w+1 grants, which
// spreads *different* rare tokens across the arcs (diversity) instead of
// pushing the single rarest token everywhere.  Wanted deliveries are
// preferred over pure diversity floods at every pick, and a token is
// never delivered twice to the same vertex (the coordination the paper
// describes).
void GlobalGreedyPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const auto& possession = view.global_possession();
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());

  const auto holders = view.aggregate_holders();
  std::vector<TokenId> rarity_order(universe);
  std::iota(rarity_order.begin(), rarity_order.end(), 0);
  rng_.shuffle(rarity_order);
  std::stable_sort(rarity_order.begin(), rarity_order.end(),
                   [&](TokenId a, TokenId b) {
                     return holders[static_cast<std::size_t>(a)] <
                            holders[static_cast<std::size_t>(b)];
                   });

  // Per-arc base candidates and per-vertex outstanding wants.
  std::vector<TokenSet> candidates(num_arcs, TokenSet(universe));
  std::vector<std::int32_t> remaining(num_arcs, 0);
  bool anything = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    TokenSet cand = possession[static_cast<std::size_t>(arc.from)];
    cand -= possession[static_cast<std::size_t>(arc.to)];
    anything = anything || !cand.empty();
    candidates[static_cast<std::size_t>(a)] = std::move(cand);
    remaining[static_cast<std::size_t>(a)] = view.capacity(a);
  }
  if (!anything) return;

  std::vector<TokenSet> outstanding(n, TokenSet(universe));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    outstanding[static_cast<std::size_t>(v)] =
        inst.want(v) - possession[static_cast<std::size_t>(v)];
  }

  std::vector<TokenSet> granted(n, TokenSet(universe));
  std::vector<std::int32_t> grant_count(universe, 0);

  std::int32_t wave = 0;
  while (true) {
    bool progress = false;
    bool exhausted = true;
    for (ArcId a = 0; a < graph.num_arcs(); ++a) {
      if (remaining[static_cast<std::size_t>(a)] <= 0) continue;
      const auto head = static_cast<std::size_t>(graph.arc(a).to);
      TokenSet cand = candidates[static_cast<std::size_t>(a)];
      cand -= granted[head];
      if (cand.empty()) continue;
      exhausted = false;

      const TokenSet wanted_cand = cand & outstanding[head];
      TokenId pick = -1;
      const std::array<const TokenSet*, 2> pools{&wanted_cand, &cand};
      for (const TokenSet* pool : pools) {
        for (TokenId t : rarity_order) {
          if (pool->test(t) &&
              grant_count[static_cast<std::size_t>(t)] <= wave) {
            pick = t;
            break;
          }
        }
        if (pick >= 0) break;
      }
      if (pick < 0) continue;  // every candidate is over the wave cap

      plan.send(a, pick, universe);
      granted[head].set(pick);
      ++grant_count[static_cast<std::size_t>(pick)];
      --remaining[static_cast<std::size_t>(a)];
      progress = true;
    }
    if (exhausted) break;
    if (!progress) ++wave;  // relax the duplication cap and retry
  }
}

}  // namespace ocd::heuristics
