#include "ocd/heuristics/global_greedy.hpp"

#include <vector>

#include "ocd/util/rarity.hpp"

namespace ocd::heuristics {

void GlobalGreedyPolicy::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed);
}

// Coordinated greedy over (arc, token) pairs.  Assignment proceeds in
// passes; during pass w a token may hold at most w+1 grants, which
// spreads *different* rare tokens across the arcs (diversity) instead of
// pushing the single rarest token everywhere.  Wanted deliveries are
// preferred over pure diversity floods at every pick, and a token is
// never delivered twice to the same vertex (the coordination the paper
// describes).
//
// All per-step sets live in rank space (bit r = token at rarity rank r,
// see ocd/util/rarity.hpp), so each pick is a first-set-bit over
// `cand_words & wanted_words & wave_ok_words` instead of an O(universe)
// scan of the rarity order.  Per-arc candidate sets are maintained
// incrementally: granting a token to a vertex clears its bit from every
// in-arc of that vertex, and arcs whose candidates or capacity are
// exhausted leave the active list for good (both only shrink).
void GlobalGreedyPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const auto& possession = view.global_possession();
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());

  RarityRanker ranker;
  ranker.assign_by_rarity(view.aggregate_holders(), &rng_);

  // Possession permuted once per step; every other rank-space set is a
  // word-parallel combination of these.
  std::vector<TokenSet> ranked_poss(n);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ranked_poss[static_cast<std::size_t>(v)] =
        ranker.to_ranks(possession[static_cast<std::size_t>(v)]);
  }

  // Per-arc candidates (tail has, head lacks) and remaining capacity.
  std::vector<TokenSet> candidates(num_arcs);
  std::vector<std::int32_t> remaining(num_arcs, 0);
  bool anything = false;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    TokenSet cand = ranked_poss[static_cast<std::size_t>(arc.from)];
    cand -= ranked_poss[static_cast<std::size_t>(arc.to)];
    anything = anything || !cand.empty();
    candidates[static_cast<std::size_t>(a)] = std::move(cand);
    remaining[static_cast<std::size_t>(a)] = view.capacity(a);
  }
  if (!anything) return;

  // Outstanding wants per vertex, fixed at step start.
  std::vector<TokenSet> outstanding(n);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    TokenSet out = ranker.to_ranks(inst.want(v));
    out -= ranked_poss[static_cast<std::size_t>(v)];
    outstanding[static_cast<std::size_t>(v)] = std::move(out);
  }

  // wave_ok holds the ranks whose grant count is still <= wave; ranks
  // pushed over the cap park in `capped` until the next wave relaxes it.
  std::vector<std::int32_t> grant_count(universe, 0);
  TokenSet wave_ok = TokenSet::full(universe);
  TokenSet capped(universe);

  std::vector<ArcId> active;
  active.reserve(num_arcs);
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (remaining[static_cast<std::size_t>(a)] > 0 &&
        !candidates[static_cast<std::size_t>(a)].empty())
      active.push_back(a);
  }

  const std::size_t num_words = wave_ok.words().size();
  std::int32_t wave = 0;
  while (!active.empty()) {
    bool progress = false;
    std::size_t kept = 0;
    for (const ArcId a : active) {
      const auto ai = static_cast<std::size_t>(a);
      const auto head = static_cast<std::size_t>(graph.arc(a).to);
      const auto& cand_w = candidates[ai].words();
      const auto& out_w = outstanding[head].words();
      const auto& ok_w = wave_ok.words();

      // Wanted deliveries first, diversity floods second; each pick is
      // a first-set-bit over the masked words.
      TokenId pick = -1;
      bool cand_left = false;
      for (std::size_t wi = 0; wi < num_words; ++wi) {
        cand_left = cand_left || cand_w[wi] != 0;
        const std::uint64_t w = cand_w[wi] & out_w[wi] & ok_w[wi];
        if (w != 0) {
          pick = static_cast<TokenId>(
              wi * 64 + static_cast<std::size_t>(__builtin_ctzll(w)));
          break;
        }
      }
      if (pick < 0) {
        if (!cand_left) continue;  // exhausted for good: drop the arc
        for (std::size_t wi = 0; wi < num_words; ++wi) {
          const std::uint64_t w = cand_w[wi] & ok_w[wi];
          if (w != 0) {
            pick = static_cast<TokenId>(
                wi * 64 + static_cast<std::size_t>(__builtin_ctzll(w)));
            break;
          }
        }
      }
      if (pick < 0) {  // every candidate is over the wave cap
        active[kept++] = a;
        continue;
      }

      plan.send(a, ranker.token_at(pick), universe);
      if (++grant_count[static_cast<std::size_t>(pick)] > wave) {
        wave_ok.reset(pick);
        capped.set(pick);
      }
      // The head now holds (a grant of) this token: no arc into it may
      // offer the token again this step.
      for (const ArcId b : graph.in_arcs(graph.arc(a).to))
        candidates[static_cast<std::size_t>(b)].reset(pick);
      progress = true;
      if (--remaining[ai] > 0) active[kept++] = a;
    }
    active.resize(kept);
    if (active.empty()) break;
    if (!progress) {  // relax the duplication cap and retry
      ++wave;
      wave_ok |= capped;
      capped.clear();
    }
  }
}

}  // namespace ocd::heuristics
