#include "ocd/heuristics/global_greedy.hpp"

#include <algorithm>
#include <array>

#include "ocd/util/binstream.hpp"
#include "ocd/util/parallel.hpp"

namespace ocd::heuristics {

namespace {

/// Engage the sharded wave scan only when a pass visits at least this
/// many awake arcs; below it the pool wake-up costs more than the scan.
/// A pure perf knob: the schedule is bit-identical either way.
constexpr std::size_t kParallelWaveMinArcs = 256;

/// Items per chunk for the step-start row rebuilds.
constexpr std::size_t kVertexGrain = 16;
constexpr std::size_t kArcGrain = 64;

/// One arc's fused candidate scan against (cand, out, wave_ok):
/// `wanted` is the first wanted in-cap candidate (rank), `flood` the
/// first in-cap candidate of any kind, `cand_left` ORs every candidate
/// word seen before the wanted hit — nonzero means candidates remain
/// (only meaningful when both picks are -1, i.e. the scan ran through).
struct ArcScan {
  TokenId wanted = -1;
  TokenId flood = -1;
  std::uint64_t cand_left = 0;
};

ArcScan scan_arc(const std::uint64_t* cand_w, const std::uint64_t* out_w,
                 const std::uint64_t* ok_w, std::size_t num_words) {
  ArcScan r;
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    const std::uint64_t cw = cand_w[wi];
    r.cand_left |= cw;
    const std::uint64_t in_cap = cw & ok_w[wi];
    if (in_cap == 0) continue;
    const std::uint64_t wanted = in_cap & out_w[wi];
    if (wanted != 0) {
      r.wanted = static_cast<TokenId>(
          wi * 64 + static_cast<std::size_t>(__builtin_ctzll(wanted)));
      return r;
    }
    if (r.flood < 0)
      r.flood = static_cast<TokenId>(
          wi * 64 + static_cast<std::size_t>(__builtin_ctzll(in_cap)));
  }
  return r;
}

}  // namespace

void GlobalGreedyPolicy::reset(const core::Instance& instance,
                               std::uint64_t seed) {
  rng_ = Rng(seed);
  const auto n = static_cast<std::size_t>(instance.graph().num_vertices());
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  const auto num_arcs = static_cast<std::size_t>(instance.graph().num_arcs());
  ranked_poss_.reset(n, universe);
  candidates_.reset(num_arcs, universe);
  outstanding_.reset(n, universe);
  remaining_.assign(num_arcs, 0);
  grant_count_.assign(universe, 0);
  full_ = TokenSet::full(universe);
  wave_ok_ = TokenSet(universe);
  capped_ = TokenSet(universe);
  active_.clear();
  active_.reserve(num_arcs);
  asleep_.assign(num_arcs, 0);
  scan_wanted_.assign(num_arcs, -1);
  scan_flood_.assign(num_arcs, -1);
}

// Coordinated greedy over (arc, token) pairs.  Assignment proceeds in
// passes; during pass w a token may hold at most w+1 grants, which
// spreads *different* rare tokens across the arcs (diversity) instead of
// pushing the single rarest token everywhere.  Wanted deliveries are
// preferred over pure diversity floods at every pick, and a token is
// never delivered twice to the same vertex (the coordination the paper
// describes).
//
// All per-step sets live in rank space (bit r = token at rarity rank r,
// see ocd/util/rarity.hpp), so each pick is a first-set-bit over
// `cand_words & wanted_words & wave_ok_words` instead of an O(universe)
// scan of the rarity order.  Per-arc candidate sets are maintained
// incrementally: granting a token to a vertex clears its bit from every
// in-arc of that vertex, and arcs whose candidates or capacity are
// exhausted leave the active list for good (both only shrink).
//
// Parallel execution (ISSUE 5): the step-start row rebuilds shard over
// disjoint matrix rows, and each big pass runs a two-phase scan-then-
// merge.  Phase A shards the awake arcs into fixed chunks and scores
// each against the PASS-START state (reads only) into per-arc slots of
// the scan_wanted_/scan_flood_ scratch.  Phase B walks the arcs in the
// serial order and applies picks: because candidate and wave_ok masks
// only SHRINK within a pass, a pre-scored pick that is still present in
// both masks is provably the pick the serial scan would make (earlier
// bits cannot reappear, wanted candidates cannot appear), so it is used
// as-is; a pick invalidated by an earlier merge step falls back to the
// exact serial rescan.  Every pick, tie-break and sleep/drop decision
// is therefore bit-identical to the serial path for any OCD_JOBS.
//
// Every working set lives in the policy's scratch members (sized in
// reset(), overwritten in place here), so a steady-state step is
// allocation-free on both the serial and the sharded path.
void GlobalGreedyPolicy::plan_step(const sim::StepView& view,
                                   sim::StepPlan& plan) {
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  ranker_.assign_by_rarity(view.aggregate_holders(), &rng_);
  plan_waves(view, [&](ArcId a, TokenId pick) {
    plan.send(a, ranker_.token_at(pick), universe);
  });
}

template <typename Grant>
void GlobalGreedyPolicy::plan_waves(const sim::StepView& view, Grant&& grant) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());

  // Possession permuted once per step; every other rank-space set is a
  // word-parallel combination of these.  Disjoint rows per chunk.
  util::parallel_for(n, kVertexGrain, [&](util::ChunkRange c) {
    for (std::size_t vi = c.begin; vi < c.end; ++vi)
      ranker_.to_ranks_into(possession.row(vi), ranked_poss_.row(vi));
  });

  // Per-arc candidates (tail has, head lacks) and remaining capacity.
  const bool anything = util::parallel_reduce(
      num_arcs, kArcGrain, false,
      [&](util::ChunkRange c) {
        bool any = false;
        for (std::size_t ai = c.begin; ai < c.end; ++ai) {
          const Arc& arc = graph.arc(static_cast<ArcId>(ai));
          MutableTokenSetView cand = candidates_.row(ai);
          cand.assign(ranked_poss_.row(static_cast<std::size_t>(arc.from)));
          cand -= ranked_poss_.row(static_cast<std::size_t>(arc.to));
          any = any || !cand.empty();
          remaining_[ai] = view.capacity(static_cast<ArcId>(ai));
        }
        return any;
      },
      [](bool acc, bool chunk) { return acc || chunk; });
  if (!anything) return;

  // Outstanding wants per vertex, fixed at step start.
  util::parallel_for(n, kVertexGrain, [&](util::ChunkRange c) {
    for (std::size_t vi = c.begin; vi < c.end; ++vi) {
      MutableTokenSetView out = outstanding_.row(vi);
      ranker_.to_ranks_into(inst.want(static_cast<VertexId>(vi)), out);
      out -= ranked_poss_.row(vi);
    }
  });

  // wave_ok holds the ranks whose grant count is still <= wave; ranks
  // pushed over the cap park in `capped` until the next wave relaxes it.
  std::fill(grant_count_.begin(), grant_count_.end(), 0);
  wave_ok_.assign(full_);
  capped_.clear();

  active_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const auto ai = static_cast<std::size_t>(a);
    if (remaining_[ai] > 0 && !candidates_.row(ai).empty())
      active_.push_back(a);
  }

  // An arc whose candidates are all over the duplication cap cannot pick
  // again until the cap relaxes (its candidate set and wave_ok only
  // shrink within a wave), so instead of rescanning it every pass it
  // falls asleep and skips to the next relaxation: one flag check per
  // pass instead of a full word scan.  The pick sequence — and hence the
  // schedule — is identical to rescanning everything, because a sleeping
  // arc could never have picked in the passes it skips, and it keeps its
  // slot in the list so the scan order never changes.
  const std::size_t num_words = wave_ok_.words().size();
  const std::uint64_t* ok_w = wave_ok_.words().data();
  const bool sharded = util::parallel_active();
  std::int32_t wave = 0;
  std::size_t awake = active_.size();
  while (!active_.empty()) {
    if (awake == 0) {
      // Every surviving arc is capped: the full rescan would be a
      // no-progress pass.  Relax the cap and wake everyone.
      ++wave;
      wave_ok_ |= capped_;
      capped_.clear();
      for (const ArcId a : active_) asleep_[static_cast<std::size_t>(a)] = 0;
      awake = active_.size();
    }

    // Phase A: pre-score every awake arc against the pass-start state.
    // Reads candidates_/outstanding_/wave_ok_ only; writes disjoint
    // per-arc slots, so the result is independent of scheduling.
    const bool prescored = sharded && awake >= kParallelWaveMinArcs;
    if (prescored) {
      util::parallel_for(active_.size(), kArcGrain, [&](util::ChunkRange c) {
        for (std::size_t p = c.begin; p < c.end; ++p) {
          const auto ai = static_cast<std::size_t>(active_[p]);
          if (asleep_[ai]) continue;
          const Arc& arc = graph.arc(active_[p]);
          const ArcScan scan = scan_arc(
              candidates_.row(ai).words_data(),
              outstanding_.row(static_cast<std::size_t>(arc.to)).words_data(),
              ok_w, num_words);
          scan_wanted_[ai] = scan.wanted;
          scan_flood_[ai] = scan.flood;
        }
      });
    }

    // Phase B (and the whole pass when not sharded): serial merge in
    // the fixed arc order, with the serial rescan as the slow path.
    std::size_t kept = 0;
    for (std::size_t p = 0; p < active_.size(); ++p) {
      const ArcId a = active_[p];
      const auto ai = static_cast<std::size_t>(a);
      if (asleep_[ai]) {
        active_[kept++] = a;
        continue;
      }
      const Arc& arc = graph.arc(a);
      const TokenSetView cand = candidates_.row(ai);

      TokenId pick = -1;
      bool resolved = false;
      bool cand_nonempty = false;
      if (prescored) {
        // A pre-scored pick still present in the (only-shrinking) masks
        // is exactly what the serial rescan would return.
        const TokenId wanted = scan_wanted_[ai];
        const TokenId flood = scan_flood_[ai];
        if (wanted >= 0) {
          if (cand.test(wanted) && wave_ok_.test(wanted)) {
            pick = wanted;
            resolved = true;
          }
        } else if (flood >= 0) {
          if (cand.test(flood) && wave_ok_.test(flood)) {
            pick = flood;
            resolved = true;
          }
        } else {
          // Nothing in cap at pass start and masks only shrank: the
          // rescan could not find a pick either.  Candidates may have
          // been granted away since the pre-score, so consult the
          // current set for the sleep-vs-drop call.
          pick = -1;
          resolved = true;
          cand_nonempty = !cand.empty();
        }
      }
      if (!resolved) {
        const ArcScan scan = scan_arc(
            cand.words_data(),
            outstanding_.row(static_cast<std::size_t>(arc.to)).words_data(),
            ok_w, num_words);
        pick = scan.wanted >= 0 ? scan.wanted : scan.flood;
        cand_nonempty = scan.cand_left != 0;
      }

      if (pick < 0) {
        // Candidates left means they are all capped: sleep until the
        // next relaxation.  None left means the arc is done for good.
        --awake;
        if (cand_nonempty) {
          asleep_[ai] = 1;
          active_[kept++] = a;
        }
        continue;
      }

      grant(a, pick);
      if (++grant_count_[static_cast<std::size_t>(pick)] > wave) {
        wave_ok_.reset(pick);
        capped_.set(pick);
      }
      // The head now holds (a grant of) this token: no arc into it may
      // offer the token again this step.
      for (const ArcId b : graph.in_arcs(arc.to))
        candidates_.row(static_cast<std::size_t>(b)).reset(pick);
      if (--remaining_[ai] > 0) {
        active_[kept++] = a;
      } else {
        --awake;  // capacity exhausted: the arc leaves for good
      }
    }
    active_.resize(kept);
  }
}

void GlobalGreedyPolicy::save_state(util::BinStream& out) const {
  for (std::uint64_t word : rng_.state()) out.put_u64(word);
}

void GlobalGreedyPolicy::load_state(util::BinStream& in) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = in.get_u64("global.rng");
  rng_.set_state(state);
}

void GlobalGreedyPolicy::begin_coordination(const CoordinationSetup& setup) {
  coord_ = setup;
  const Digraph& graph = setup.instance->graph();
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto universe = static_cast<std::size_t>(setup.instance->num_tokens());
  arc_owned_.assign(num_arcs, 0);
  owned_arcs_.clear();
  touched_.clear();
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    if (setup.shard_of[static_cast<std::size_t>(arc.from)] != setup.shard)
      continue;
    arc_owned_[static_cast<std::size_t>(a)] = 1;
    owned_arcs_.push_back(a);
    touched_.push_back(arc.from);
    touched_.push_back(arc.to);
  }
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  granted_.reset(n, universe);
  head_dirty_.assign(n, 0);
  dirty_heads_.clear();
  entries_.clear();
  list_ranks_.clear();
  merge_active_.clear();
  picks_.clear();
  ord_of_arc_.clear();
  cand_scratch_ = TokenSet(universe);
  flood_scratch_ = TokenSet(universe);
  own_entries_ = 0;
  own_any_ = false;
}

// Phase 1 of the coordinated step: draw the per-step rarity order
// (exactly the rng sequence plan_step draws, so checkpoints and the
// single-process run stay in lockstep), rebuild the rank-space rows
// the owned arcs touch, and summarize every owned candidate arc into
// its k smallest wanted/flood ranks.  The frame peers receive is the
// encoded summary; the decoded form stays in entries_/list_ranks_ as
// the own-shard prefix of the merge input.
std::int64_t GlobalGreedyPolicy::coord_prescore(const sim::StepView& view,
                                                std::string& frame) {
  const Digraph& graph = view.graph();
  const core::Instance& inst = view.instance();
  const util::TokenMatrix& possession = view.global_possession();

  ranker_.assign_by_rarity(view.aggregate_holders(), &rng_);
  for (const VertexId v : touched_) {
    const auto vi = static_cast<std::size_t>(v);
    ranker_.to_ranks_into(possession.row(vi), ranked_poss_.row(vi));
    MutableTokenSetView out = outstanding_.row(vi);
    ranker_.to_ranks_into(inst.want(v), out);
    out -= ranked_poss_.row(vi);
  }

  entries_.clear();
  list_ranks_.clear();
  bool local_any = false;
  const auto topk = static_cast<std::size_t>(coord_.wave_topk);
  for (const ArcId a : owned_arcs_) {
    const Arc& arc = graph.arc(a);
    cand_scratch_.assign(ranked_poss_.row(static_cast<std::size_t>(arc.from)));
    cand_scratch_ -= ranked_poss_.row(static_cast<std::size_t>(arc.to));
    if (cand_scratch_.empty()) continue;
    // The serial `anything` early-return counts capacity-0 arcs too.
    local_any = true;
    if (view.capacity(a) == 0) continue;

    WaveEntry e;
    e.arc = a;
    e.head = arc.to;
    std::size_t taken = 0;
    const auto take = [&](TokenId r) {
      if (taken == topk) return false;  // stopped => ranks remain
      list_ranks_.push_back(r);
      ++taken;
      return true;
    };
    e.w_begin = static_cast<std::int32_t>(list_ranks_.size());
    e.more_w = !TokenSet::for_each_in_intersection(
        cand_scratch_, outstanding_.row(static_cast<std::size_t>(arc.to)),
        take);
    e.w_end = static_cast<std::int32_t>(list_ranks_.size());
    flood_scratch_.assign(cand_scratch_);
    flood_scratch_ -= outstanding_.row(static_cast<std::size_t>(arc.to));
    taken = 0;
    e.f_begin = e.w_end;
    e.more_f = !TokenSet::for_each_in_intersection(flood_scratch_, full_, take);
    e.f_end = static_cast<std::int32_t>(list_ranks_.size());
    entries_.push_back(e);
  }
  own_entries_ = entries_.size();
  own_any_ = local_any;

  // Wire format (everything delta-coded, ascending):
  //   bool any; varint entry_count;
  //   per entry: varint arc_delta (>= 1, from -1); u8 flags
  //   (bit0 more_w, bit1 more_f); varint |W|; |W| rank deltas;
  //   varint |F|; |F| rank deltas.
  util::BinStream bs;
  bs.put_bool(local_any);
  bs.put_varint(static_cast<std::uint64_t>(entries_.size()));
  ArcId prev_arc = -1;
  for (const WaveEntry& e : entries_) {
    bs.put_varint(static_cast<std::uint64_t>(e.arc - prev_arc));
    prev_arc = e.arc;
    bs.put_u8(static_cast<std::uint8_t>((e.more_w ? 1 : 0) |
                                        (e.more_f ? 2 : 0)));
    for (const auto [begin, end] :
         {std::pair{e.w_begin, e.w_end}, std::pair{e.f_begin, e.f_end}}) {
      bs.put_varint(static_cast<std::uint64_t>(end - begin));
      TokenId prev_rank = -1;
      for (std::int32_t i = begin; i < end; ++i) {
        bs.put_varint(
            static_cast<std::uint64_t>(list_ranks_[static_cast<std::size_t>(
                                           i)] -
                                       prev_rank));
        prev_rank = list_ranks_[static_cast<std::size_t>(i)];
      }
    }
  }
  frame = std::move(bs).take();
  return static_cast<std::int64_t>(own_entries_);
}

// Phase 2: decode the peers' summaries, sort the union into the fixed
// global arc order and replay the wave loop over it.  Validity of a
// listed rank r for entry (from -> to): candidate sets only shrink by
// grants to the head (cand_now = cand_0 \ granted(to)) and the wanted/
// flood split is fixed at step start, so r is pickable iff it is
// ungranted and uncapped; the k smallest listed ranks therefore bound
// every rank beyond the horizon, and a class with no valid listed rank
// but a `more` flag set is the one case the summary cannot decide —
// that step falls back to the exact serial rescan over the replicated
// possession state.  Every shard replays this identically, so grants,
// cap bookkeeping and first-touch ordinals agree everywhere.
bool GlobalGreedyPolicy::coord_absorb(const sim::StepView& view,
                                      std::span<const std::string> frames) {
  const Digraph& graph = view.graph();
  const auto num_arcs = static_cast<std::int64_t>(graph.num_arcs());
  const auto n = static_cast<std::int64_t>(graph.num_vertices());
  const auto universe = static_cast<std::int64_t>(view.num_tokens());
  const auto topk = static_cast<std::uint64_t>(coord_.wave_topk);

  for (const VertexId v : dirty_heads_) {
    granted_.row(static_cast<std::size_t>(v)).clear();
    head_dirty_[static_cast<std::size_t>(v)] = 0;
  }
  dirty_heads_.clear();
  picks_.clear();

  bool any = own_any_;
  entries_.resize(own_entries_);
  for (std::int32_t p = 0; p < coord_.num_shards; ++p) {
    if (p == coord_.shard) continue;
    util::BinStream in(frames[static_cast<std::size_t>(p)]);
    any = in.get_bool("wave.any") || any;
    const std::uint64_t count = in.get_varint("wave.entries");
    in.require(count <= static_cast<std::uint64_t>(num_arcs), "wave.entries",
               "more summary entries than arcs");
    ArcId prev_arc = -1;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t delta = in.get_varint("wave.arc");
      in.require(delta >= 1 && prev_arc + static_cast<std::int64_t>(delta) <
                                   num_arcs,
                 "wave.arc", "arc ids must be increasing and in range");
      WaveEntry e;
      e.arc = static_cast<ArcId>(prev_arc + static_cast<std::int64_t>(delta));
      prev_arc = e.arc;
      e.head = graph.arc(e.arc).to;
      const std::uint8_t flags = in.get_u8("wave.flags");
      in.require(flags <= 3, "wave.flags", "unknown summary flags");
      e.more_w = (flags & 1) != 0;
      e.more_f = (flags & 2) != 0;
      for (int cls = 0; cls < 2; ++cls) {
        const std::uint64_t len = in.get_varint("wave.list");
        in.require(len <= topk, "wave.list", "list longer than the horizon");
        in.require((cls == 0 ? e.more_w : e.more_f) ? len == topk : true,
                   "wave.list", "beyond-horizon flag on a short list");
        const auto begin = static_cast<std::int32_t>(list_ranks_.size());
        TokenId prev_rank = -1;
        for (std::uint64_t j = 0; j < len; ++j) {
          const std::uint64_t rd = in.get_varint("wave.rank");
          in.require(rd >= 1 && prev_rank + static_cast<std::int64_t>(rd) <
                                    universe,
                     "wave.rank", "ranks must be increasing and in range");
          prev_rank =
              static_cast<TokenId>(prev_rank + static_cast<std::int64_t>(rd));
          list_ranks_.push_back(prev_rank);
        }
        const auto end = static_cast<std::int32_t>(list_ranks_.size());
        if (cls == 0) {
          e.w_begin = begin;
          e.w_end = end;
        } else {
          e.f_begin = begin;
          e.f_end = end;
        }
      }
      entries_.push_back(e);
    }
    in.require(in.exhausted(), "wave.frame", "trailing bytes");
  }
  if (!any) return false;  // the serial early return: empty step

  std::sort(entries_.begin(), entries_.end(),
            [](const WaveEntry& a, const WaveEntry& b) { return a.arc < b.arc; });

  std::fill(grant_count_.begin(), grant_count_.end(), 0);
  wave_ok_.assign(full_);
  capped_.clear();
  merge_active_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].remaining = view.capacity(entries_[i].arc);
    entries_[i].ordinal = -1;
    entries_[i].asleep = false;
    merge_active_.push_back(i);
  }

  std::int64_t next_ordinal = 0;
  std::int32_t wave = 0;
  std::size_t awake = merge_active_.size();
  bool exhausted = false;
  while (!merge_active_.empty() && !exhausted) {
    if (awake == 0) {
      ++wave;
      wave_ok_ |= capped_;
      capped_.clear();
      for (const std::size_t idx : merge_active_) entries_[idx].asleep = false;
      awake = merge_active_.size();
    }
    std::size_t kept = 0;
    for (std::size_t p = 0; p < merge_active_.size(); ++p) {
      const std::size_t idx = merge_active_[p];
      WaveEntry& e = entries_[idx];
      if (e.asleep) {
        merge_active_[kept++] = idx;
        continue;
      }
      const TokenSetView head_row =
          granted_.row(static_cast<std::size_t>(e.head));
      TokenId pick = -1;
      for (std::int32_t i = e.w_begin; i < e.w_end; ++i) {
        const TokenId r = list_ranks_[static_cast<std::size_t>(i)];
        if (!head_row.test(r) && wave_ok_.test(r)) {
          pick = r;
          break;
        }
      }
      if (pick < 0 && e.more_w) {
        // A wanted rank beyond the horizon could beat any flood pick.
        exhausted = true;
        break;
      }
      if (pick < 0) {
        for (std::int32_t i = e.f_begin; i < e.f_end; ++i) {
          const TokenId r = list_ranks_[static_cast<std::size_t>(i)];
          if (!head_row.test(r) && wave_ok_.test(r)) {
            pick = r;
            break;
          }
        }
        if (pick < 0 && e.more_f) {
          exhausted = true;
          break;
        }
      }
      if (pick < 0) {
        // Both lists are exhaustive here (a `more` flag would have
        // fallen back above), so the sleep-vs-drop call is exact:
        // candidates remain iff some listed rank is still ungranted.
        bool cand_nonempty = false;
        for (std::int32_t i = e.w_begin; i < e.f_end && !cand_nonempty; ++i)
          cand_nonempty = !head_row.test(list_ranks_[static_cast<std::size_t>(i)]);
        --awake;
        if (cand_nonempty) {
          e.asleep = true;
          merge_active_[kept++] = idx;
        }
        continue;
      }

      if (e.ordinal < 0) e.ordinal = next_ordinal++;
      if (arc_owned_[static_cast<std::size_t>(e.arc)])
        picks_.push_back({e.arc, pick, e.ordinal});
      if (!head_dirty_[static_cast<std::size_t>(e.head)]) {
        head_dirty_[static_cast<std::size_t>(e.head)] = 1;
        dirty_heads_.push_back(e.head);
      }
      granted_.row(static_cast<std::size_t>(e.head)).set(pick);
      if (++grant_count_[static_cast<std::size_t>(pick)] > wave) {
        wave_ok_.reset(pick);
        capped_.set(pick);
      }
      if (--e.remaining > 0) {
        merge_active_[kept++] = idx;
      } else {
        --awake;
      }
    }
    if (!exhausted) merge_active_.resize(kept);
  }
  if (!exhausted) return false;

  // Top-k horizon exhausted: possession is fully replicated in
  // coordinated mode, so re-derive the whole step with the exact
  // serial rescan (no further communication) and keep the owned
  // grants.  The rng was already drawn in coord_prescore.
  ord_of_arc_.assign(static_cast<std::size_t>(num_arcs), -1);
  std::int64_t next_ord = 0;
  picks_.clear();
  plan_waves(view, [&](ArcId a, TokenId rank) {
    auto& ord = ord_of_arc_[static_cast<std::size_t>(a)];
    if (ord < 0) ord = next_ord++;
    if (arc_owned_[static_cast<std::size_t>(a)])
      picks_.push_back({a, rank, ord});
  });
  return true;
}

void GlobalGreedyPolicy::coord_emit(const sim::StepView& view,
                                    sim::StepPlan& plan,
                                    std::vector<std::int64_t>& ordinals) {
  const auto universe = static_cast<std::size_t>(view.num_tokens());
  for (const CoordPick& p : picks_) {
    const std::size_t slots = plan.sends().size();
    plan.send(p.arc, ranker_.token_at(p.rank), universe);
    if (plan.sends().size() != slots) ordinals.push_back(p.ordinal);
  }
}

}  // namespace ocd::heuristics
