#include "ocd/heuristics/random_useful.hpp"

#include "ocd/util/binstream.hpp"

namespace ocd::heuristics {

void RandomPolicy::reset(const core::Instance& instance, std::uint64_t seed) {
  seed_ = seed;
  const auto universe = static_cast<std::size_t>(instance.num_tokens());
  useful_ = TokenSet(universe);
  batch_ = TokenSet(universe);
  pool_.clear();
  pool_.reserve(universe);
  chosen_.clear();
  chosen_.reserve(universe);
}

void RandomPolicy::plan_vertex(VertexId self, const sim::StepView& view,
                               sim::StepPlan& plan) {
  // An all-idle step is legitimate under stale peer knowledge (waiting
  // for fresher snapshots), so every vertex marks idle and the marks
  // are overridden by any actual send.
  plan.mark_idle();
  const TokenSetView mine = view.own_possession(self);
  if (mine.empty()) return;

  // One derived stream per (step, vertex): this vertex's random
  // subsets are a pure function of (seed, step, self), independent of
  // how many other vertices planned before it — the property the
  // sharded runtime relies on for bit-identical schedules.
  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(view.step()),
                      static_cast<std::uint64_t>(self)));
  for (ArcId arc_id : view.graph().out_arcs(self)) {
    const Arc& arc = view.graph().arc(arc_id);
    useful_.assign(mine);
    useful_ -= view.peer_possession(self, arc.to);
    const auto available = useful_.count();
    if (available == 0) continue;
    const auto capacity = static_cast<std::size_t>(view.capacity(arc_id));
    if (capacity == 0) continue;
    if (available <= capacity) {
      plan.send(arc_id, useful_);
      continue;
    }
    // Random subset of `capacity` tokens from the useful set.
    useful_.to_vector_into(pool_);
    batch_.clear();
    rng.sample_indices_into(pool_.size(), capacity, chosen_);
    for (std::size_t index : chosen_)
      batch_.set(pool_[index]);
    plan.send(arc_id, batch_);
  }
}

void RandomPolicy::save_state(util::BinStream& out) const {
  out.put_u64(seed_);
}

void RandomPolicy::load_state(util::BinStream& in) {
  seed_ = in.get_u64("random.seed");
}

}  // namespace ocd::heuristics
