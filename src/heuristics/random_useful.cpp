#include "ocd/heuristics/random_useful.hpp"

namespace ocd::heuristics {

void RandomPolicy::reset(const core::Instance&, std::uint64_t seed) {
  rng_ = Rng(seed);
}

void RandomPolicy::plan_vertex(VertexId self, const sim::StepView& view,
                               sim::StepPlan& plan) {
  // An all-idle step is legitimate under stale peer knowledge (waiting
  // for fresher snapshots), so every vertex marks idle and the marks
  // are overridden by any actual send.
  plan.mark_idle();
  const TokenSet& mine = view.own_possession(self);
  if (mine.empty()) return;
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  for (ArcId arc_id : view.graph().out_arcs(self)) {
    const Arc& arc = view.graph().arc(arc_id);
    TokenSet useful = mine;
    useful -= view.peer_possession(self, arc.to);
    const auto available = useful.count();
    if (available == 0) continue;
    const auto capacity = static_cast<std::size_t>(view.capacity(arc_id));
    if (capacity == 0) continue;
    if (available <= capacity) {
      plan.send(arc_id, useful);
      continue;
    }
    // Random subset of `capacity` tokens from the useful set.
    const std::vector<TokenId> pool = useful.to_vector();
    TokenSet batch(universe);
    const auto chosen = rng_.sample_indices(pool.size(), capacity);
    for (std::size_t index : chosen)
      batch.set(pool[index]);
    plan.send(arc_id, batch);
  }
}

}  // namespace ocd::heuristics
