#include "ocd/flow/max_flow.hpp"

#include <algorithm>

namespace ocd::flow {

void MaxFlow::reset(std::int32_t num_vertices) {
  OCD_EXPECTS(num_vertices >= 0);
  n_ = num_vertices;
  to_.clear();
  from_.clear();
  cap_.clear();
  init_cap_.clear();
  csr_dirty_ = true;
  last_sink_ = -1;
  // Vertex-indexed scratch is sized up front so runs never resize it;
  // clear() above kept the arc arrays' capacity, and resize here only
  // allocates when this instance grows past its high-water mark.
  const auto n = static_cast<std::size_t>(num_vertices);
  if (level_.size() < n) {
    level_.resize(n);
    cur_.resize(n);
    queue_.resize(n);
    sink_mark_.resize(n);
    offsets_.resize(n + 1);
    // The DFS path visits each vertex at most once; reserving here keeps
    // blocking_flow's push_back off the heap.
    path_.reserve(n);
  }
}

std::int32_t MaxFlow::add_edge(std::int32_t from, std::int32_t to,
                               Flow capacity, Flow reverse_capacity) {
  OCD_EXPECTS(from >= 0 && from < n_);
  OCD_EXPECTS(to >= 0 && to < n_);
  OCD_EXPECTS(capacity >= 0 && capacity <= kInfinity);
  OCD_EXPECTS(reverse_capacity >= 0 && reverse_capacity <= kInfinity);
  const auto id = static_cast<std::int32_t>(to_.size() / 2);
  to_.push_back(to);
  from_.push_back(from);
  cap_.push_back(capacity);
  init_cap_.push_back(capacity);
  to_.push_back(from);
  from_.push_back(to);
  cap_.push_back(reverse_capacity);
  init_cap_.push_back(reverse_capacity);
  csr_dirty_ = true;
  return id;
}

void MaxFlow::reload() { std::copy(init_cap_.begin(), init_cap_.end(),
                                   cap_.begin()); }

void MaxFlow::build_csr() {
  if (!csr_dirty_) return;
  const auto n = static_cast<std::size_t>(n_);
  const auto m = to_.size();
  if (adj_.size() < m) adj_.resize(m);
  std::fill(offsets_.begin(), offsets_.begin() + static_cast<std::ptrdiff_t>(n) + 1,
            0);
  for (std::size_t a = 0; a < m; ++a)
    ++offsets_[static_cast<std::size_t>(from_[a]) + 1];
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  // Stable counting sort by tail vertex: cur_ doubles as the write
  // cursor here, so per-vertex arc order is insertion order.
  std::copy(offsets_.begin(), offsets_.begin() + static_cast<std::ptrdiff_t>(n),
            cur_.begin());
  for (std::size_t a = 0; a < m; ++a)
    adj_[static_cast<std::size_t>(
        cur_[static_cast<std::size_t>(from_[a])]++)] =
        static_cast<std::int32_t>(a);
  csr_dirty_ = false;
}

bool MaxFlow::bfs(std::int32_t source, std::int32_t sink, Flow min_cap) {
  std::fill(level_.begin(), level_.begin() + static_cast<std::ptrdiff_t>(n_),
            -1);
  std::int32_t head = 0;
  std::int32_t tail = 0;
  level_[static_cast<std::size_t>(source)] = 0;
  queue_[static_cast<std::size_t>(tail++)] = source;
  while (head < tail) {
    const std::int32_t v = queue_[static_cast<std::size_t>(head++)];
    const std::int32_t lv = level_[static_cast<std::size_t>(v)];
    for (std::int32_t c = offsets_[static_cast<std::size_t>(v)];
         c < offsets_[static_cast<std::size_t>(v) + 1]; ++c) {
      const std::int32_t a = adj_[static_cast<std::size_t>(c)];
      if (cap_[static_cast<std::size_t>(a)] < min_cap) continue;
      const std::int32_t w = to_[static_cast<std::size_t>(a)];
      if (level_[static_cast<std::size_t>(w)] >= 0) continue;
      level_[static_cast<std::size_t>(w)] = lv + 1;
      queue_[static_cast<std::size_t>(tail++)] = w;
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

MaxFlow::Flow MaxFlow::blocking_flow(std::int32_t source, std::int32_t sink,
                                     Flow min_cap) {
  std::copy(offsets_.begin(), offsets_.begin() + static_cast<std::ptrdiff_t>(n_),
            cur_.begin());
  Flow total = 0;
  path_.clear();
  std::int32_t v = source;
  while (true) {
    if (v == sink) {
      // Augment by the path bottleneck, then retreat to just before the
      // first arc the augmentation saturated.
      Flow bottleneck = kInfinity;
      for (const std::int32_t a : path_)
        bottleneck = std::min(bottleneck, cap_[static_cast<std::size_t>(a)]);
      for (const std::int32_t a : path_) {
        cap_[static_cast<std::size_t>(a)] -= bottleneck;
        cap_[static_cast<std::size_t>(a) ^ 1] += bottleneck;
      }
      total += bottleneck;
      std::size_t keep = 0;
      while (keep < path_.size() &&
             cap_[static_cast<std::size_t>(path_[keep])] >= min_cap)
        ++keep;
      v = from_[static_cast<std::size_t>(path_[keep])];
      path_.resize(keep);
      continue;
    }
    // Advance along the current arc if one is admissible.
    bool advanced = false;
    std::int32_t& c = cur_[static_cast<std::size_t>(v)];
    for (; c < offsets_[static_cast<std::size_t>(v) + 1]; ++c) {
      const std::int32_t a = adj_[static_cast<std::size_t>(c)];
      if (cap_[static_cast<std::size_t>(a)] < min_cap) continue;
      const std::int32_t w = to_[static_cast<std::size_t>(a)];
      if (level_[static_cast<std::size_t>(w)] !=
          level_[static_cast<std::size_t>(v)] + 1)
        continue;
      path_.push_back(a);
      v = w;
      advanced = true;
      break;
    }
    if (advanced) continue;
    // Dead end: prune v from this phase and retreat one arc.
    level_[static_cast<std::size_t>(v)] = -1;
    if (path_.empty()) break;  // the source itself is exhausted
    v = from_[static_cast<std::size_t>(path_.back())];
    path_.pop_back();
  }
  return total;
}

MaxFlow::Flow MaxFlow::run(std::int32_t source, std::int32_t sink) {
  OCD_EXPECTS(source >= 0 && source < n_);
  OCD_EXPECTS(sink >= 0 && sink < n_);
  OCD_EXPECTS(source != sink);
  build_csr();
  Flow total = 0;
  while (bfs(source, sink, 1)) total += blocking_flow(source, sink, 1);
  last_sink_ = sink;
  return total;
}

MaxFlow::Flow MaxFlow::run_scaling(std::int32_t source, std::int32_t sink) {
  OCD_EXPECTS(source >= 0 && source < n_);
  OCD_EXPECTS(sink >= 0 && sink < n_);
  OCD_EXPECTS(source != sink);
  build_csr();
  Flow max_cap = 0;
  for (const Flow c : cap_) max_cap = std::max(max_cap, c);
  Flow delta = 1;
  while (delta <= max_cap / 2) delta *= 2;
  Flow total = 0;
  for (; delta >= 1; delta /= 2)
    while (bfs(source, sink, delta))
      total += blocking_flow(source, sink, delta);
  // The Δ = 1 rounds above end on a failed unit BFS, so level_ holds
  // the source-reachable min-cut marks exactly as after run().
  last_sink_ = sink;
  return total;
}

void MaxFlow::compute_sink_side() {
  OCD_EXPECTS(last_sink_ >= 0);
  build_csr();
  std::fill(sink_mark_.begin(),
            sink_mark_.begin() + static_cast<std::ptrdiff_t>(n_), 0);
  std::int32_t head = 0;
  std::int32_t tail = 0;
  sink_mark_[static_cast<std::size_t>(last_sink_)] = 1;
  queue_[static_cast<std::size_t>(tail++)] = last_sink_;
  // Reverse-residual BFS: w can reach x iff the arc w -> x has residual
  // capacity, i.e. the paired reverse of some arc x -> w does.
  while (head < tail) {
    const std::int32_t x = queue_[static_cast<std::size_t>(head++)];
    for (std::int32_t c = offsets_[static_cast<std::size_t>(x)];
         c < offsets_[static_cast<std::size_t>(x) + 1]; ++c) {
      const std::int32_t a = adj_[static_cast<std::size_t>(c)];
      if (cap_[static_cast<std::size_t>(a) ^ 1] <= 0) continue;
      const std::int32_t w = to_[static_cast<std::size_t>(a)];
      if (sink_mark_[static_cast<std::size_t>(w)]) continue;
      sink_mark_[static_cast<std::size_t>(w)] = 1;
      queue_[static_cast<std::size_t>(tail++)] = w;
    }
  }
}

}  // namespace ocd::flow
