#include "ocd/topology/physical.hpp"

#include <algorithm>
#include <queue>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {

namespace {

/// BFS shortest path from `from` to `to` returning arc ids, or empty
/// when unreachable (callers guarantee connectivity).
std::vector<ArcId> shortest_path_arcs(const Digraph& g, VertexId from,
                                      VertexId to) {
  std::vector<ArcId> parent_arc(static_cast<std::size_t>(g.num_vertices()),
                                -1);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_vertices()), false);
  std::queue<VertexId> frontier;
  seen[static_cast<std::size_t>(from)] = true;
  frontier.push(from);
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    if (u == to) break;
    for (ArcId a : g.out_arcs(u)) {
      const VertexId w = g.arc(a).to;
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        parent_arc[static_cast<std::size_t>(w)] = a;
        frontier.push(w);
      }
    }
  }
  std::vector<ArcId> path;
  if (!seen[static_cast<std::size_t>(to)]) return path;
  for (VertexId v = to; v != from;) {
    const ArcId a = parent_arc[static_cast<std::size_t>(v)];
    OCD_ASSERT(a >= 0);
    path.push_back(a);
    v = g.arc(a).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

OverlayProjection project_overlay(const PhysicalOptions& opt, Rng& rng) {
  OCD_EXPECTS(opt.routers >= 2);
  OCD_EXPECTS(opt.hosts >= 2 && opt.hosts <= opt.routers);
  OCD_EXPECTS(opt.max_overlay_capacity >= 1);

  OverlayProjection projection;

  // Physical router network: connected random bidirectional graph.
  RandomGraphOptions physical_options;
  physical_options.edge_probability = opt.router_edge_probability;
  physical_options.capacities = opt.physical_capacities;
  projection.physical = random_overlay(opt.routers, physical_options, rng);

  // Hosts on distinct routers.
  const auto chosen = rng.sample_indices(
      static_cast<std::size_t>(opt.routers), static_cast<std::size_t>(opt.hosts));
  projection.host_router.assign(chosen.begin(), chosen.end());

  // Logical edges: random pairs plus a ring for strong connectivity.
  std::vector<std::pair<VertexId, VertexId>> logical_edges;
  for (VertexId a = 0; a < opt.hosts; ++a) {
    for (VertexId b = a + 1; b < opt.hosts; ++b) {
      if (rng.chance(opt.overlay_edge_probability))
        logical_edges.emplace_back(a, b);
    }
  }
  for (VertexId a = 0; a < opt.hosts; ++a)
    logical_edges.emplace_back(a, (a + 1) % opt.hosts);

  projection.overlay = Digraph(opt.hosts);
  // physical arc id -> overlay arcs using it.
  std::vector<std::vector<ArcId>> users(
      static_cast<std::size_t>(projection.physical.num_arcs()));

  auto add_logical_arc = [&](VertexId from, VertexId to) {
    if (projection.overlay.has_arc(from, to)) return;
    const auto path = shortest_path_arcs(
        projection.physical,
        projection.host_router[static_cast<std::size_t>(from)],
        projection.host_router[static_cast<std::size_t>(to)]);
    OCD_ASSERT_MSG(!path.empty() || projection.host_router[static_cast<std::size_t>(from)] ==
                                        projection.host_router[static_cast<std::size_t>(to)],
                   "physical network must be connected");
    std::int32_t capacity = opt.max_overlay_capacity;
    for (ArcId a : path) {
      capacity = std::min(capacity, projection.physical.arc(a).capacity);
    }
    capacity = std::max(capacity, 1);
    const ArcId overlay_arc = projection.overlay.add_arc(from, to, capacity);
    OCD_ASSERT(static_cast<std::size_t>(overlay_arc) ==
               projection.route.size());
    projection.route.push_back(path);
    for (ArcId a : path) users[static_cast<std::size_t>(a)].push_back(overlay_arc);
  };

  for (const auto& [a, b] : logical_edges) {
    add_logical_arc(a, b);
    add_logical_arc(b, a);
  }

  // Capacity groups for shared physical arcs.
  for (ArcId a = 0; a < projection.physical.num_arcs(); ++a) {
    auto& sharing = users[static_cast<std::size_t>(a)];
    if (sharing.size() < 2) continue;
    CapacityGroup group;
    group.members = std::move(sharing);
    group.capacity = projection.physical.arc(a).capacity;
    group.physical_arc = a;
    projection.groups.push_back(std::move(group));
  }

  OCD_ENSURES(is_strongly_connected(projection.overlay));
  return projection;
}

bool groups_respected(const std::vector<CapacityGroup>& groups,
                      const core::Schedule& schedule) {
  for (const core::Timestep& step : schedule.steps()) {
    for (const CapacityGroup& group : groups) {
      std::int64_t used = 0;
      for (const core::ArcSend& send : step.sends()) {
        if (std::find(group.members.begin(), group.members.end(), send.arc) !=
            group.members.end()) {
          used += static_cast<std::int64_t>(send.tokens.count());
        }
      }
      if (used > group.capacity) return false;
    }
  }
  return true;
}

}  // namespace ocd::topology
