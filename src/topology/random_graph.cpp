#include "ocd/topology/random_graph.hpp"

#include <cmath>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {

double default_edge_probability(std::int32_t n) {
  OCD_EXPECTS(n >= 2);
  return std::min(1.0, 2.0 * std::log(static_cast<double>(n)) /
                           static_cast<double>(n));
}

namespace {

std::int32_t draw_capacity(const CapacityRange& range, Rng& rng) {
  OCD_EXPECTS(range.lo >= 1 && range.lo <= range.hi);
  return static_cast<std::int32_t>(rng.uniform_int(range.lo, range.hi));
}

/// Adds arcs u->v and v->u with independent capacities, merging if present.
void add_bidirectional(Digraph& g, VertexId u, VertexId v,
                       const CapacityRange& range, Rng& rng) {
  if (!g.has_arc(u, v)) g.add_arc(u, v, draw_capacity(range, rng));
  if (!g.has_arc(v, u)) g.add_arc(v, u, draw_capacity(range, rng));
}

}  // namespace

Digraph random_overlay(std::int32_t n, const RandomGraphOptions& options,
                       Rng& rng) {
  OCD_EXPECTS(n >= 2);
  const double p = options.edge_probability > 0.0
                       ? options.edge_probability
                       : default_edge_probability(n);
  Digraph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) add_bidirectional(g, u, v, options.capacities, rng);
    }
  }
  if (options.force_connected && !is_strongly_connected(g)) {
    // Random Hamiltonian cycle backbone: keeps degree growth O(1) and
    // guarantees strong connectivity without biasing toward any hub.
    std::vector<VertexId> order(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    rng.shuffle(order);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const VertexId u = order[i];
      const VertexId v = order[(i + 1) % order.size()];
      add_bidirectional(g, u, v, options.capacities, rng);
    }
  }
  return g;
}

Digraph random_overlay(std::int32_t n, Rng& rng) {
  return random_overlay(n, RandomGraphOptions{}, rng);
}

Digraph sparse_random_overlay(std::int32_t n, double expected_degree,
                              const RandomGraphOptions& options, Rng& rng) {
  OCD_EXPECTS(n >= 2);
  OCD_EXPECTS(expected_degree >= 0.0);
  const double p =
      std::min(1.0, expected_degree / static_cast<double>(n - 1));
  Digraph g(n);
  if (p > 0.0 && p < 1.0) {
    // Batagelj–Brandes: walk the lexicographic sequence of unordered
    // pairs {u, v}, u < v, jumping geometric(p) positions between
    // successful draws.  Row u holds (n - 1 - u) pairs; `row_start`
    // advances monotonically, so decoding the linear index back to
    // (u, v) is amortized O(1) per edge.
    const double log_q = std::log1p(-p);
    const std::int64_t total =
        static_cast<std::int64_t>(n) * (n - 1) / 2;
    std::int64_t i = -1;
    std::int64_t row_start = 0;
    VertexId u = 0;
    while (true) {
      const double r = rng.uniform_real();
      const double skip = std::floor(std::log1p(-r) / log_q);
      if (skip >= static_cast<double>(total - i)) break;
      i += 1 + static_cast<std::int64_t>(skip);
      if (i >= total) break;
      while (i >= row_start + (n - 1 - u)) {
        row_start += n - 1 - u;
        ++u;
      }
      const VertexId v = static_cast<VertexId>(u + 1 + (i - row_start));
      add_bidirectional(g, u, v, options.capacities, rng);
    }
  } else if (p >= 1.0) {
    for (VertexId a = 0; a < n; ++a)
      for (VertexId b = a + 1; b < n; ++b)
        add_bidirectional(g, a, b, options.capacities, rng);
  }
  if (options.force_connected && !is_strongly_connected(g)) {
    std::vector<VertexId> order(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    rng.shuffle(order);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const VertexId a = order[i];
      const VertexId b = order[(i + 1) % order.size()];
      add_bidirectional(g, a, b, options.capacities, rng);
    }
  }
  return g;
}

Digraph sparse_random_overlay(std::int32_t n, double expected_degree,
                              Rng& rng) {
  return sparse_random_overlay(n, expected_degree, RandomGraphOptions{},
                               rng);
}

}  // namespace ocd::topology
