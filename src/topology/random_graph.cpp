#include "ocd/topology/random_graph.hpp"

#include <cmath>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {

double default_edge_probability(std::int32_t n) {
  OCD_EXPECTS(n >= 2);
  return std::min(1.0, 2.0 * std::log(static_cast<double>(n)) /
                           static_cast<double>(n));
}

namespace {

std::int32_t draw_capacity(const CapacityRange& range, Rng& rng) {
  OCD_EXPECTS(range.lo >= 1 && range.lo <= range.hi);
  return static_cast<std::int32_t>(rng.uniform_int(range.lo, range.hi));
}

/// Adds arcs u->v and v->u with independent capacities, merging if present.
void add_bidirectional(Digraph& g, VertexId u, VertexId v,
                       const CapacityRange& range, Rng& rng) {
  if (!g.has_arc(u, v)) g.add_arc(u, v, draw_capacity(range, rng));
  if (!g.has_arc(v, u)) g.add_arc(v, u, draw_capacity(range, rng));
}

}  // namespace

Digraph random_overlay(std::int32_t n, const RandomGraphOptions& options,
                       Rng& rng) {
  OCD_EXPECTS(n >= 2);
  const double p = options.edge_probability > 0.0
                       ? options.edge_probability
                       : default_edge_probability(n);
  Digraph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) add_bidirectional(g, u, v, options.capacities, rng);
    }
  }
  if (options.force_connected && !is_strongly_connected(g)) {
    // Random Hamiltonian cycle backbone: keeps degree growth O(1) and
    // guarantees strong connectivity without biasing toward any hub.
    std::vector<VertexId> order(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    rng.shuffle(order);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const VertexId u = order[i];
      const VertexId v = order[(i + 1) % order.size()];
      add_bidirectional(g, u, v, options.capacities, rng);
    }
  }
  return g;
}

Digraph random_overlay(std::int32_t n, Rng& rng) {
  return random_overlay(n, RandomGraphOptions{}, rng);
}

}  // namespace ocd::topology
