#include "ocd/topology/transit_stub.hpp"

#include <cmath>
#include <vector>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {

namespace {

std::int32_t draw_capacity(const CapacityRange& range, Rng& rng) {
  return static_cast<std::int32_t>(rng.uniform_int(range.lo, range.hi));
}

void add_bidirectional(Digraph& g, VertexId u, VertexId v,
                       const CapacityRange& range, Rng& rng) {
  if (!g.has_arc(u, v)) g.add_arc(u, v, draw_capacity(range, rng));
  if (!g.has_arc(v, u)) g.add_arc(v, u, draw_capacity(range, rng));
}

/// Connects `members` with a random spanning tree plus extra edges with
/// probability `p` — the standard connected-random-domain construction.
void build_domain(Digraph& g, const std::vector<VertexId>& members, double p,
                  const CapacityRange& range, Rng& rng) {
  if (members.size() <= 1) return;
  // Random spanning tree: attach each vertex (in random order) to a
  // uniformly chosen earlier vertex.
  std::vector<VertexId> order = members;
  rng.shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    add_bidirectional(g, order[i], order[j], range, rng);
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (rng.chance(p)) add_bidirectional(g, members[i], members[j], range, rng);
    }
  }
}

}  // namespace

Digraph transit_stub(const TransitStubOptions& opt, Rng& rng) {
  OCD_EXPECTS(opt.transit_domains >= 1);
  OCD_EXPECTS(opt.transit_nodes_per_domain >= 1);
  OCD_EXPECTS(opt.stub_domains_per_transit_node >= 0);
  OCD_EXPECTS(opt.stub_nodes_per_domain >= 1);

  Digraph g(opt.total_vertices());
  VertexId next_vertex = 0;

  // Transit routers, grouped by domain.
  std::vector<std::vector<VertexId>> transit(
      static_cast<std::size_t>(opt.transit_domains));
  for (auto& domain : transit) {
    domain.resize(static_cast<std::size_t>(opt.transit_nodes_per_domain));
    for (auto& v : domain) v = next_vertex++;
    build_domain(g, domain, opt.transit_edge_probability, opt.capacities, rng);
  }

  // Backbone: random spanning tree over domains (one inter-domain edge
  // between random representatives per tree edge), plus one extra random
  // inter-domain edge per domain pair with modest probability.
  for (std::size_t d = 1; d < transit.size(); ++d) {
    const std::size_t other = static_cast<std::size_t>(rng.below(d));
    const VertexId u =
        transit[d][static_cast<std::size_t>(rng.below(transit[d].size()))];
    const VertexId v = transit[other][static_cast<std::size_t>(
        rng.below(transit[other].size()))];
    add_bidirectional(g, u, v, opt.capacities, rng);
  }
  for (std::size_t a = 0; a < transit.size(); ++a) {
    for (std::size_t b = a + 1; b < transit.size(); ++b) {
      if (rng.chance(0.3)) {
        const VertexId u =
            transit[a][static_cast<std::size_t>(rng.below(transit[a].size()))];
        const VertexId v =
            transit[b][static_cast<std::size_t>(rng.below(transit[b].size()))];
        add_bidirectional(g, u, v, opt.capacities, rng);
      }
    }
  }

  // Stub domains.
  for (const auto& domain : transit) {
    for (VertexId router : domain) {
      for (std::int32_t s = 0; s < opt.stub_domains_per_transit_node; ++s) {
        std::vector<VertexId> stub(
            static_cast<std::size_t>(opt.stub_nodes_per_domain));
        for (auto& v : stub) v = next_vertex++;
        build_domain(g, stub, opt.stub_edge_probability, opt.capacities, rng);
        const VertexId gateway =
            stub[static_cast<std::size_t>(rng.below(stub.size()))];
        add_bidirectional(g, router, gateway, opt.capacities, rng);
      }
    }
  }

  OCD_ENSURES(next_vertex == g.num_vertices());
  OCD_ENSURES(is_strongly_connected(g));
  return g;
}

TransitStubOptions transit_stub_options_for_size(std::int32_t n) {
  OCD_EXPECTS(n >= 8);
  // total = T*Nt*(1 + S*Ns).  Keep S = 2, Ns = 3 (7x multiplier per
  // transit router) and split the remaining factor between T and Nt.
  TransitStubOptions opt;
  opt.stub_domains_per_transit_node = 2;
  opt.stub_nodes_per_domain = 3;
  const double routers_needed =
      static_cast<double>(n) /
      (1.0 + static_cast<double>(opt.stub_domains_per_transit_node *
                                 opt.stub_nodes_per_domain));
  const auto routers = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::lround(routers_needed)));
  opt.transit_domains =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(
                                    std::floor(std::sqrt(routers / 4.0))));
  opt.transit_nodes_per_domain = std::max<std::int32_t>(
      1, (routers + opt.transit_domains - 1) / opt.transit_domains);
  return opt;
}

}  // namespace ocd::topology
