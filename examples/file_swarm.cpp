// file_swarm: a BitTorrent-flavoured scenario from the paper's intro —
// multiple files, each wanted by a different community of peers, sourced
// at scattered seeders over a transit-stub internet.
//
//   $ ./file_swarm [num_vertices] [num_files]
//
// Shows scenario builders, transit-stub topologies, per-vertex
// completion-time statistics, and the bandwidth/pruning analysis.
#include <cstdlib>
#include <iostream>

#include "ocd/core/bounds.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/transit_stub.hpp"
#include "ocd/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const std::int32_t target_n = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::int32_t num_files = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int32_t tokens_per_file = 16;

  // A transit-stub overlay approximating an internet-like topology.
  Rng rng(2026);
  const auto opt = topology::transit_stub_options_for_size(target_n);
  Digraph graph = topology::transit_stub(opt, rng);
  std::cout << "overlay: " << graph.num_vertices() << " nodes, "
            << graph.num_arcs() << " arcs (transit-stub)\n";

  // Random seeders: each file starts at one vertex outside its swarm.
  const auto instance = core::subdivided_files_random_senders(
      std::move(graph), tokens_per_file * num_files, num_files, rng);
  std::cout << "content: " << num_files << " files x " << tokens_per_file
            << " tokens, seeded at random non-member vertices\n\n";

  Table table({"policy", "steps", "mean_completion", "bandwidth",
               "pruned_bw", "useful", "redundant"});
  table.set_precision(1);

  for (const auto& name : heuristics::all_policy_names()) {
    auto policy = heuristics::make_policy(name);
    sim::SimOptions options;
    options.seed = 7;
    const auto result = sim::run(instance, *policy, options);
    if (!result.success) {
      std::cout << name << " did not complete\n";
      continue;
    }
    table.add_row({std::string(name), result.steps,
                   result.stats.mean_completion(), result.bandwidth,
                   core::prune(instance, result.schedule).bandwidth(),
                   result.stats.useful_moves, result.stats.redundant_moves});
  }
  table.print(std::cout);

  std::cout << "\nbandwidth floor (one move per outstanding want): "
            << core::bandwidth_lower_bound(instance) << '\n'
            << "makespan floor (distance + capacity closure): "
            << core::makespan_lower_bound(instance) << '\n';
  std::cout << "\nreading: the flooding heuristics push every token\n"
               "everywhere; the bandwidth heuristic routes each file to its\n"
               "swarm, trading a little time for a lot of bandwidth.\n";
  return 0;
}
