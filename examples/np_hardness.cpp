// np_hardness: watch the Dominating Set reduction (paper appendix,
// Figure 7) decide domination through content distribution — and pull a
// dominating set back out of the witness schedule.
//
//   $ ./np_hardness
#include <iostream>

#include "ocd/core/validate.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/reduction/ds_reduction.hpp"

int main() {
  using namespace ocd;

  // A 7-vertex graph: a hexagon with a hub attached to three corners.
  reduction::UndirectedGraph g(7);
  for (std::int32_t v = 0; v < 6; ++v) g.add_edge(v, (v + 1) % 6);
  g.add_edge(6, 0);
  g.add_edge(6, 2);
  g.add_edge(6, 4);

  const auto exact_set = reduction::minimum_dominating_set(g);
  std::cout << "graph: hexagon + hub, domination number = "
            << exact_set.size() << " (e.g. {";
  for (std::size_t i = 0; i < exact_set.size(); ++i)
    std::cout << (i ? "," : "") << exact_set[i];
  std::cout << "})\n\n";

  for (std::int32_t k = 0; k <= 4; ++k) {
    const auto reduced = reduction::reduce_dominating_set(g, k);
    std::cout << "k = " << k << ": FOCD instance with "
              << reduced.instance.num_vertices() << " vertices, "
              << reduced.instance.num_tokens() << " tokens -> ";

    exact::BnbOptions options;
    options.max_nodes = 200'000'000;
    options.max_plans_per_step = 200'000'000;
    core::Schedule witness;
    const bool feasible =
        exact::dfocd_feasible(reduced.instance, 2, options, &witness);
    if (!feasible) {
      std::cout << "NOT solvable in 2 timesteps  =>  no dominating set of "
                   "size <= "
                << k << '\n';
      continue;
    }
    const auto set = reduction::extract_dominating_set(reduced, witness);
    std::cout << "solvable in 2 timesteps  =>  dominating set {";
    for (std::size_t i = 0; i < set.size(); ++i)
      std::cout << (i ? "," : "") << set[i];
    std::cout << "} (valid: "
              << (reduction::is_dominating_set(g, set) ? "yes" : "no")
              << ")\n";
  }

  std::cout << "\nThe 2-step feasibility flips exactly at the domination\n"
               "number - the NP-hardness reduction of Theorem 5 at work.\n";
  return 0;
}
