// ocd_cli: a command-line front end for the whole library — generate a
// topology, build a workload, pick a heuristic, apply network dynamics,
// and report the run (optionally saving/loading instances).
//
//   $ ./ocd_cli --topology random --n 100 --tokens 64 --policy local
//   $ ./ocd_cli --topology transit-stub --n 200 --files 8 --policy bandwidth
//   $ ./ocd_cli --policy random --staleness 4 --dynamics link-churn
//   $ ./ocd_cli --save my.inst ; ./ocd_cli --load my.inst --policy global
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "ocd/core/bounds.hpp"
#include "ocd/core/compact.hpp"
#include "ocd/core/io.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace {

struct CliOptions {
  std::string topology = "random";  // random | transit-stub
  std::int32_t n = 50;
  std::int32_t tokens = 32;
  std::int32_t files = 1;
  double density = 1.0;  // receiver-density threshold
  std::string policy = "local";
  std::int32_t staleness = 0;
  std::string dynamics;  // "", jitter, link-churn, node-churn
  std::uint64_t seed = 1;
  std::string save_path;
  std::string load_path;
  bool post_optimize = false;
};

void usage() {
  std::cout <<
      "ocd_cli — run an overlay content distribution experiment\n"
      "  --topology random|transit-stub   overlay family (default random)\n"
      "  --n <int>                        vertices (default 50)\n"
      "  --tokens <int>                   tokens (default 32)\n"
      "  --files <int>                    subdivide into equal files (default 1)\n"
      "  --density <0..1>                 receiver-density threshold (default 1)\n"
      "  --policy <name>                  round-robin|random|local|bandwidth|global\n"
      "  --staleness <int>                peer knowledge k turns old (default 0)\n"
      "  --dynamics jitter|link-churn|node-churn\n"
      "  --seed <int>\n"
      "  --save <path>                    write the instance and exit\n"
      "  --load <path>                    run on a saved instance\n"
      "  --optimize                       report prune+compact post-pass too\n";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage();
      return std::nullopt;
    } else if (flag == "--topology") {
      opt.topology = value();
    } else if (flag == "--n") {
      opt.n = std::atoi(value());
    } else if (flag == "--tokens") {
      opt.tokens = std::atoi(value());
    } else if (flag == "--files") {
      opt.files = std::atoi(value());
    } else if (flag == "--density") {
      opt.density = std::atof(value());
    } else if (flag == "--policy") {
      opt.policy = value();
    } else if (flag == "--staleness") {
      opt.staleness = std::atoi(value());
    } else if (flag == "--dynamics") {
      opt.dynamics = value();
    } else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag == "--save") {
      opt.save_path = value();
    } else if (flag == "--load") {
      opt.load_path = value();
    } else if (flag == "--optimize") {
      opt.post_optimize = true;
    } else {
      std::cerr << "unknown flag " << flag << "\n\n";
      usage();
      std::exit(2);
    }
  }
  return opt;
}

ocd::core::Instance build_instance(const CliOptions& opt, ocd::Rng& rng) {
  using namespace ocd;
  if (!opt.load_path.empty()) return core::load_instance_file(opt.load_path);

  Digraph graph =
      opt.topology == "transit-stub"
          ? topology::transit_stub(
                topology::transit_stub_options_for_size(opt.n), rng)
          : topology::random_overlay(opt.n, rng);

  if (opt.files > 1) {
    return core::subdivided_files(std::move(graph), opt.tokens, opt.files, 0);
  }
  if (opt.density < 1.0) {
    auto built = core::single_source_receiver_density(std::move(graph),
                                                      opt.tokens, 0,
                                                      opt.density, rng);
    return std::move(built.instance);
  }
  return core::single_source_all_receivers(std::move(graph), opt.tokens, 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocd;
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) return 0;
  const CliOptions& opt = *parsed;

  try {
    Rng rng(opt.seed);
    const core::Instance instance = build_instance(opt, rng);
    std::cout << "instance: " << instance.summary() << '\n';

    if (!opt.save_path.empty()) {
      core::save_instance_file(instance, opt.save_path);
      std::cout << "saved to " << opt.save_path << '\n';
      return 0;
    }

    std::unique_ptr<dynamics::DynamicsModel> model;
    if (opt.dynamics == "jitter") {
      model = std::make_unique<dynamics::CapacityJitter>(0.5);
    } else if (opt.dynamics == "link-churn") {
      model = std::make_unique<dynamics::LinkChurn>(0.10, 3);
    } else if (opt.dynamics == "node-churn") {
      model = std::make_unique<dynamics::NodeChurn>(0.05, 4);
    } else if (!opt.dynamics.empty()) {
      std::cerr << "unknown dynamics model " << opt.dynamics << '\n';
      return 2;
    }

    auto policy = heuristics::make_policy(opt.policy);
    sim::SimOptions options;
    options.seed = opt.seed;
    options.staleness = opt.staleness;
    options.dynamics = model.get();
    options.max_steps = 1'000'000;
    const auto result = sim::run(instance, *policy, options);

    if (!result.success) {
      std::cout << "run did NOT complete within " << result.steps
                << " steps\n";
      return 1;
    }
    std::cout << "policy " << opt.policy << " completed in " << result.steps
              << " timesteps, " << result.bandwidth << " token-transfers\n"
              << "  useful " << result.stats.useful_moves << ", redundant "
              << result.stats.redundant_moves << ", mean completion "
              << result.stats.mean_completion() << " steps, upload fairness "
              << result.stats.upload_fairness() << '\n'
              << "  bounds: makespan >= " << core::makespan_lower_bound(instance)
              << ", bandwidth >= " << core::bandwidth_lower_bound(instance)
              << '\n';

    if (opt.post_optimize) {
      const auto optimized = core::optimize_schedule(instance, result.schedule);
      std::cout << "  prune+compact post-pass: " << optimized.length()
                << " timesteps, " << optimized.bandwidth()
                << " token-transfers\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
