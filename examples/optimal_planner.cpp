// optimal_planner: exact solving on small instances — the paper's §3.4
// time-indexed integer program (through the bundled simplex/MIP stack)
// and the combinatorial branch-and-bound, demonstrated on the Figure-1
// tension graph and a random instance.
//
//   $ ./optimal_planner
#include <iostream>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/exact/ip_solver.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

namespace {

void print_schedule(const ocd::core::Instance& inst,
                    const ocd::core::Schedule& schedule) {
  using namespace ocd;
  for (std::size_t i = 0; i < schedule.steps().size(); ++i) {
    std::cout << "  step " << i + 1 << ":";
    for (const core::ArcSend& send : schedule.steps()[i].sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      std::cout << "  " << arc.from << "->" << arc.to
                << send.tokens.to_string();
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  using namespace ocd;

  // ---- Part 1: the Figure-1 graph ------------------------------------
  const core::Instance fig1 = core::figure1_instance();
  std::cout << "Figure-1 instance: " << fig1.summary() << "\n\n";

  // Fast plan: minimum makespan via branch and bound.
  const auto fast = exact::focd_min_makespan(fig1, 6);
  if (fast.has_value()) {
    std::cout << "minimum-time plan: " << fast->makespan << " steps, "
              << fast->schedule.bandwidth() << " moves ("
              << fast->stats.nodes << " search nodes)\n";
    print_schedule(fig1, fast->schedule);
  }

  // Frugal plan: minimum bandwidth via the time-indexed IP, one extra
  // step of slack.
  const auto frugal = exact::solve_eocd(fig1, 3);
  if (frugal.has_value()) {
    std::cout << "\nminimum-bandwidth plan: " << frugal->bandwidth
              << " moves in " << frugal->schedule.length()
              << " steps (IP, " << frugal->nodes_explored
              << " branch-and-bound nodes)\n";
    print_schedule(fig1, frugal->schedule);
  }
  std::cout << "\nThe two optima conflict: speed costs 6 moves, frugality "
               "costs a 3rd step.\n\n";

  // ---- Part 2: heuristics vs optimum on a random instance ------------
  Rng rng(99);
  const auto inst = core::random_small_instance(5, 2, 0.5, rng);
  std::cout << "random instance: " << inst.summary() << '\n';
  const auto optimum = exact::min_makespan_ip(inst, 10);
  if (!optimum.has_value()) {
    std::cout << "instance unsatisfiable\n";
    return 1;
  }
  std::cout << "exact minimum makespan (IP): " << optimum->makespan
            << " steps\n";
  for (const auto& name : heuristics::all_policy_names()) {
    auto policy = heuristics::make_policy(name);
    const auto run = sim::run(inst, *policy);
    std::cout << "  " << name << ": "
              << (run.success ? std::to_string(run.steps) + " steps"
                              : std::string("failed"))
              << '\n';
  }
  return 0;
}
