// visualize: renders a run as Graphviz DOT files and a CSV move trace.
//
//   $ ./visualize [output_dir]       # default /tmp/ocd_viz
//   $ dot -Tpng /tmp/ocd_viz/instance.dot -o instance.png
//   $ for f in /tmp/ocd_viz/step_*.dot; do dot -Tpng "$f" -o "${f%.dot}.png"; done
//
// Demonstrates core/export.hpp on the Figure-1 instance: the exact
// minimum-bandwidth plan rendered step by step, plus a heuristic run's
// full move trace.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "ocd/core/export.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/exact/ip_solver.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const std::filesystem::path dir = argc > 1 ? argv[1] : "/tmp/ocd_viz";
  std::filesystem::create_directories(dir);

  const core::Instance inst = core::figure1_instance();

  // The instance itself.
  {
    std::ofstream out(dir / "instance.dot");
    core::write_dot(inst, out);
  }
  std::cout << "wrote " << (dir / "instance.dot").string() << '\n';

  // The minimum-bandwidth exact plan, one DOT per timestep.
  const auto plan = exact::solve_eocd(inst, 3);
  if (plan.has_value()) {
    for (std::size_t i = 0; i < plan->schedule.steps().size(); ++i) {
      std::ofstream out(dir / ("step_" + std::to_string(i) + ".dot"));
      core::write_step_dot(inst, plan->schedule, i, out);
    }
    std::cout << "wrote " << plan->schedule.steps().size()
              << " step DOT files (min-bandwidth plan: "
              << plan->bandwidth << " moves / " << plan->schedule.length()
              << " steps)\n";
  }

  // A heuristic run's flat move trace.
  auto policy = heuristics::make_policy("local");
  const auto run = sim::run(inst, *policy);
  if (run.success) {
    std::ofstream out(dir / "trace.csv");
    core::write_trace_csv(inst, run.schedule, out);
    std::cout << "wrote " << (dir / "trace.csv").string() << " ("
              << run.bandwidth << " moves)\n";
  }

  std::cout << "\nrender with:  dot -Tpng " << (dir / "instance.dot").string()
            << " -o instance.png\n";
  return 0;
}
