// Quickstart: build a small overlay, describe who has and wants what,
// run a heuristic, and inspect the outcome.
//
//   $ ./quickstart
//
// Walks through the core API: Digraph -> Instance -> Policy -> run ->
// validate/prune/bounds.
#include <iostream>

#include "ocd/core/bounds.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

int main() {
  using namespace ocd;

  // 1. An overlay: 6 nodes in a ring with a chord, arc capacities in
  //    tokens per timestep.  Arcs are directed; add both directions
  //    where links are symmetric.
  Digraph graph(6);
  for (VertexId v = 0; v < 6; ++v) {
    graph.add_arc(v, (v + 1) % 6, 2);
    graph.add_arc((v + 1) % 6, v, 2);
  }
  graph.add_arc(0, 3, 1);
  graph.add_arc(3, 0, 1);

  // 2. The content: a 8-token file held by node 0, wanted by everyone
  //    else (the classic single-source broadcast).
  core::Instance instance(std::move(graph), /*num_tokens=*/8);
  instance.set_have(0, TokenSet::full(8));
  for (VertexId v = 1; v < 6; ++v) instance.set_want(v, TokenSet::full(8));
  instance.add_file(0, 8);
  std::cout << "instance: " << instance.summary() << "\n\n";

  // 3. Run each of the paper's heuristics and compare.
  std::cout << "policy        steps  bandwidth  pruned  redundant\n";
  for (const auto& name : heuristics::all_policy_names()) {
    auto policy = heuristics::make_policy(name);
    sim::SimOptions options;
    options.seed = 42;
    const auto result = sim::run(instance, *policy, options);
    if (!result.success) {
      std::cout << name << ": FAILED to complete\n";
      continue;
    }
    // Every recorded schedule replays against the formal model.
    const auto validation = core::validate(instance, result.schedule);
    if (!validation.successful) {
      std::cout << name << ": invalid schedule: " << validation.violation
                << '\n';
      continue;
    }
    const auto pruned = core::prune(instance, result.schedule);
    std::printf("%-13s %5lld  %9lld  %6lld  %9lld\n", std::string(name).c_str(),
                static_cast<long long>(result.steps),
                static_cast<long long>(result.bandwidth),
                static_cast<long long>(pruned.bandwidth()),
                static_cast<long long>(result.stats.redundant_moves));
  }

  // 4. How good is that?  Combinatorial bounds put the floor in view.
  std::cout << "\nlower bounds: makespan >= "
            << core::makespan_lower_bound(instance) << " steps, bandwidth >= "
            << core::bandwidth_lower_bound(instance) << " moves\n";
  std::cout << "serial Steiner upper bound on optimal bandwidth: "
            << core::bandwidth_upper_bound_serial_steiner(instance)
            << " moves\n";
  return 0;
}
