# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_swarm "/root/repo/build/examples/file_swarm" "60" "3")
set_tests_properties(example_file_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimal_planner "/root/repo/build/examples/optimal_planner")
set_tests_properties(example_optimal_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_np_hardness "/root/repo/build/examples/np_hardness")
set_tests_properties(example_np_hardness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_visualize "/root/repo/build/examples/visualize" "/root/repo/build/examples/viz_out")
set_tests_properties(example_visualize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli "/root/repo/build/examples/ocd_cli" "--n" "25" "--tokens" "12" "--policy" "local" "--optimize")
set_tests_properties(example_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_dynamics "/root/repo/build/examples/ocd_cli" "--n" "25" "--tokens" "12" "--policy" "random" "--dynamics" "jitter")
set_tests_properties(example_cli_dynamics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_architectures "/root/repo/build/examples/ocd_cli" "--n" "25" "--tokens" "12" "--policy" "splitstream-forest")
set_tests_properties(example_cli_architectures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
