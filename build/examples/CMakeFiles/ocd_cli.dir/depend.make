# Empty dependencies file for ocd_cli.
# This may be replaced when dependencies are built.
