file(REMOVE_RECURSE
  "CMakeFiles/ocd_cli.dir/ocd_cli.cpp.o"
  "CMakeFiles/ocd_cli.dir/ocd_cli.cpp.o.d"
  "ocd_cli"
  "ocd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
