# Empty dependencies file for optimal_planner.
# This may be replaced when dependencies are built.
