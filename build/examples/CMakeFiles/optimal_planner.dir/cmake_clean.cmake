file(REMOVE_RECURSE
  "CMakeFiles/optimal_planner.dir/optimal_planner.cpp.o"
  "CMakeFiles/optimal_planner.dir/optimal_planner.cpp.o.d"
  "optimal_planner"
  "optimal_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
