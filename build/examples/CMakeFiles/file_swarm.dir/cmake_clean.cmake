file(REMOVE_RECURSE
  "CMakeFiles/file_swarm.dir/file_swarm.cpp.o"
  "CMakeFiles/file_swarm.dir/file_swarm.cpp.o.d"
  "file_swarm"
  "file_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
