# Empty compiler generated dependencies file for file_swarm.
# This may be replaced when dependencies are built.
