# Empty dependencies file for fig2_graph_size_random.
# This may be replaced when dependencies are built.
