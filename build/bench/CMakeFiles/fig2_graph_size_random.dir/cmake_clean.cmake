file(REMOVE_RECURSE
  "CMakeFiles/fig2_graph_size_random.dir/fig2_graph_size_random.cpp.o"
  "CMakeFiles/fig2_graph_size_random.dir/fig2_graph_size_random.cpp.o.d"
  "fig2_graph_size_random"
  "fig2_graph_size_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_graph_size_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
