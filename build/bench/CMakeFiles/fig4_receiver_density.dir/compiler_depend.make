# Empty compiler generated dependencies file for fig4_receiver_density.
# This may be replaced when dependencies are built.
