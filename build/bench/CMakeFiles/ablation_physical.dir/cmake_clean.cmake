file(REMOVE_RECURSE
  "CMakeFiles/ablation_physical.dir/ablation_physical.cpp.o"
  "CMakeFiles/ablation_physical.dir/ablation_physical.cpp.o.d"
  "ablation_physical"
  "ablation_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
