file(REMOVE_RECURSE
  "CMakeFiles/ablation_arrivals.dir/ablation_arrivals.cpp.o"
  "CMakeFiles/ablation_arrivals.dir/ablation_arrivals.cpp.o.d"
  "ablation_arrivals"
  "ablation_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
