# Empty dependencies file for fig5_num_files.
# This may be replaced when dependencies are built.
