file(REMOVE_RECURSE
  "CMakeFiles/fig5_num_files.dir/fig5_num_files.cpp.o"
  "CMakeFiles/fig5_num_files.dir/fig5_num_files.cpp.o.d"
  "fig5_num_files"
  "fig5_num_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_num_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
