file(REMOVE_RECURSE
  "CMakeFiles/table_optimality_gap.dir/table_optimality_gap.cpp.o"
  "CMakeFiles/table_optimality_gap.dir/table_optimality_gap.cpp.o.d"
  "table_optimality_gap"
  "table_optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
