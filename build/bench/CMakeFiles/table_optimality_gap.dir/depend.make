# Empty dependencies file for table_optimality_gap.
# This may be replaced when dependencies are built.
