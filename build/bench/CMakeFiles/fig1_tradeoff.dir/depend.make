# Empty dependencies file for fig1_tradeoff.
# This may be replaced when dependencies are built.
