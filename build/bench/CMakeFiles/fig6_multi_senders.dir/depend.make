# Empty dependencies file for fig6_multi_senders.
# This may be replaced when dependencies are built.
