file(REMOVE_RECURSE
  "CMakeFiles/fig6_multi_senders.dir/fig6_multi_senders.cpp.o"
  "CMakeFiles/fig6_multi_senders.dir/fig6_multi_senders.cpp.o.d"
  "fig6_multi_senders"
  "fig6_multi_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_multi_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
