# Empty dependencies file for table_architectures.
# This may be replaced when dependencies are built.
