file(REMOVE_RECURSE
  "CMakeFiles/table_architectures.dir/table_architectures.cpp.o"
  "CMakeFiles/table_architectures.dir/table_architectures.cpp.o.d"
  "table_architectures"
  "table_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
