file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamics.dir/ablation_dynamics.cpp.o"
  "CMakeFiles/ablation_dynamics.dir/ablation_dynamics.cpp.o.d"
  "ablation_dynamics"
  "ablation_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
