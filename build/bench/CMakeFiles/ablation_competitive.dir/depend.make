# Empty dependencies file for ablation_competitive.
# This may be replaced when dependencies are built.
