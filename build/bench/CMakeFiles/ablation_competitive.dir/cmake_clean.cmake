file(REMOVE_RECURSE
  "CMakeFiles/ablation_competitive.dir/ablation_competitive.cpp.o"
  "CMakeFiles/ablation_competitive.dir/ablation_competitive.cpp.o.d"
  "ablation_competitive"
  "ablation_competitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
