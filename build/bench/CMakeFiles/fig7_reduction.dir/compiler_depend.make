# Empty compiler generated dependencies file for fig7_reduction.
# This may be replaced when dependencies are built.
