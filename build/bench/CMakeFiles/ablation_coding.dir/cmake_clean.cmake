file(REMOVE_RECURSE
  "CMakeFiles/ablation_coding.dir/ablation_coding.cpp.o"
  "CMakeFiles/ablation_coding.dir/ablation_coding.cpp.o.d"
  "ablation_coding"
  "ablation_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
