# Empty compiler generated dependencies file for table_hybrid.
# This may be replaced when dependencies are built.
