file(REMOVE_RECURSE
  "CMakeFiles/table_hybrid.dir/table_hybrid.cpp.o"
  "CMakeFiles/table_hybrid.dir/table_hybrid.cpp.o.d"
  "table_hybrid"
  "table_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
