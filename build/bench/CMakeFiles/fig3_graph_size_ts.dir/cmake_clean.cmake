file(REMOVE_RECURSE
  "CMakeFiles/fig3_graph_size_ts.dir/fig3_graph_size_ts.cpp.o"
  "CMakeFiles/fig3_graph_size_ts.dir/fig3_graph_size_ts.cpp.o.d"
  "fig3_graph_size_ts"
  "fig3_graph_size_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_graph_size_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
