# Empty dependencies file for fig3_graph_size_ts.
# This may be replaced when dependencies are built.
