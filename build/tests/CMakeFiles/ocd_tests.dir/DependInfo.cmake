
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coding/coding_test.cpp" "tests/CMakeFiles/ocd_tests.dir/coding/coding_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/coding/coding_test.cpp.o.d"
  "/root/repo/tests/core/bounds_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/bounds_test.cpp.o.d"
  "/root/repo/tests/core/compact_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/compact_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/compact_test.cpp.o.d"
  "/root/repo/tests/core/encoding_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/encoding_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/encoding_test.cpp.o.d"
  "/root/repo/tests/core/export_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/export_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/export_test.cpp.o.d"
  "/root/repo/tests/core/instance_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/instance_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/instance_test.cpp.o.d"
  "/root/repo/tests/core/io_fuzz_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/io_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/io_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/io_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/io_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/io_test.cpp.o.d"
  "/root/repo/tests/core/prune_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/prune_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/prune_test.cpp.o.d"
  "/root/repo/tests/core/scenario_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/scenario_test.cpp.o.d"
  "/root/repo/tests/core/schedule_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/schedule_test.cpp.o.d"
  "/root/repo/tests/core/steiner_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/steiner_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/steiner_test.cpp.o.d"
  "/root/repo/tests/core/validate_test.cpp" "tests/CMakeFiles/ocd_tests.dir/core/validate_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/core/validate_test.cpp.o.d"
  "/root/repo/tests/dynamics/dynamics_test.cpp" "tests/CMakeFiles/ocd_tests.dir/dynamics/dynamics_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/dynamics/dynamics_test.cpp.o.d"
  "/root/repo/tests/dynamics/sessions_test.cpp" "tests/CMakeFiles/ocd_tests.dir/dynamics/sessions_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/dynamics/sessions_test.cpp.o.d"
  "/root/repo/tests/exact/bnb_test.cpp" "tests/CMakeFiles/ocd_tests.dir/exact/bnb_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/exact/bnb_test.cpp.o.d"
  "/root/repo/tests/exact/hybrid_test.cpp" "tests/CMakeFiles/ocd_tests.dir/exact/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/exact/hybrid_test.cpp.o.d"
  "/root/repo/tests/exact/ip_test.cpp" "tests/CMakeFiles/ocd_tests.dir/exact/ip_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/exact/ip_test.cpp.o.d"
  "/root/repo/tests/graph/algorithms_test.cpp" "tests/CMakeFiles/ocd_tests.dir/graph/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/graph/algorithms_test.cpp.o.d"
  "/root/repo/tests/graph/digraph_test.cpp" "tests/CMakeFiles/ocd_tests.dir/graph/digraph_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/graph/digraph_test.cpp.o.d"
  "/root/repo/tests/heuristics/architectures_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/architectures_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/architectures_test.cpp.o.d"
  "/root/repo/tests/heuristics/asymmetric_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/asymmetric_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/asymmetric_test.cpp.o.d"
  "/root/repo/tests/heuristics/bandwidth_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/bandwidth_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/bandwidth_test.cpp.o.d"
  "/root/repo/tests/heuristics/global_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/global_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/global_test.cpp.o.d"
  "/root/repo/tests/heuristics/policies_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/policies_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/policies_test.cpp.o.d"
  "/root/repo/tests/heuristics/random_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/random_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/random_test.cpp.o.d"
  "/root/repo/tests/heuristics/rarest_random_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/rarest_random_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/rarest_random_test.cpp.o.d"
  "/root/repo/tests/heuristics/round_robin_test.cpp" "tests/CMakeFiles/ocd_tests.dir/heuristics/round_robin_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/heuristics/round_robin_test.cpp.o.d"
  "/root/repo/tests/integration/competitive_test.cpp" "tests/CMakeFiles/ocd_tests.dir/integration/competitive_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/integration/competitive_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/ocd_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/mutation_test.cpp" "tests/CMakeFiles/ocd_tests.dir/integration/mutation_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/integration/mutation_test.cpp.o.d"
  "/root/repo/tests/integration/stress_test.cpp" "tests/CMakeFiles/ocd_tests.dir/integration/stress_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/integration/stress_test.cpp.o.d"
  "/root/repo/tests/integration/theorems_test.cpp" "tests/CMakeFiles/ocd_tests.dir/integration/theorems_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/integration/theorems_test.cpp.o.d"
  "/root/repo/tests/lp/mip_test.cpp" "tests/CMakeFiles/ocd_tests.dir/lp/mip_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/lp/mip_test.cpp.o.d"
  "/root/repo/tests/lp/model_test.cpp" "tests/CMakeFiles/ocd_tests.dir/lp/model_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/lp/model_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_reference_test.cpp" "tests/CMakeFiles/ocd_tests.dir/lp/simplex_reference_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/lp/simplex_reference_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_test.cpp" "tests/CMakeFiles/ocd_tests.dir/lp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/lp/simplex_test.cpp.o.d"
  "/root/repo/tests/reduction/dominating_set_test.cpp" "tests/CMakeFiles/ocd_tests.dir/reduction/dominating_set_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/reduction/dominating_set_test.cpp.o.d"
  "/root/repo/tests/reduction/reduction_test.cpp" "tests/CMakeFiles/ocd_tests.dir/reduction/reduction_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/reduction/reduction_test.cpp.o.d"
  "/root/repo/tests/sim/gossip_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/gossip_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/gossip_test.cpp.o.d"
  "/root/repo/tests/sim/knowledge_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/knowledge_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/knowledge_test.cpp.o.d"
  "/root/repo/tests/sim/overhead_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/overhead_test.cpp.o.d"
  "/root/repo/tests/sim/scripted_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/scripted_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/scripted_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/ocd_tests.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/sim/stats_test.cpp.o.d"
  "/root/repo/tests/topology/physical_test.cpp" "tests/CMakeFiles/ocd_tests.dir/topology/physical_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/topology/physical_test.cpp.o.d"
  "/root/repo/tests/topology/random_graph_test.cpp" "tests/CMakeFiles/ocd_tests.dir/topology/random_graph_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/topology/random_graph_test.cpp.o.d"
  "/root/repo/tests/topology/transit_stub_test.cpp" "tests/CMakeFiles/ocd_tests.dir/topology/transit_stub_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/topology/transit_stub_test.cpp.o.d"
  "/root/repo/tests/util/error_test.cpp" "tests/CMakeFiles/ocd_tests.dir/util/error_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/util/error_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/ocd_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/ocd_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/token_set_fuzz_test.cpp" "tests/CMakeFiles/ocd_tests.dir/util/token_set_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/util/token_set_fuzz_test.cpp.o.d"
  "/root/repo/tests/util/token_set_test.cpp" "tests/CMakeFiles/ocd_tests.dir/util/token_set_test.cpp.o" "gcc" "tests/CMakeFiles/ocd_tests.dir/util/token_set_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
