# Empty dependencies file for ocd_tests.
# This may be replaced when dependencies are built.
