# Empty compiler generated dependencies file for ocd.
# This may be replaced when dependencies are built.
