
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/coded_instance.cpp" "src/CMakeFiles/ocd.dir/coding/coded_instance.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/coding/coded_instance.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/ocd.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/compact.cpp" "src/CMakeFiles/ocd.dir/core/compact.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/compact.cpp.o.d"
  "/root/repo/src/core/encoding.cpp" "src/CMakeFiles/ocd.dir/core/encoding.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/encoding.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/CMakeFiles/ocd.dir/core/export.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/export.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/ocd.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/CMakeFiles/ocd.dir/core/io.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/io.cpp.o.d"
  "/root/repo/src/core/prune.cpp" "src/CMakeFiles/ocd.dir/core/prune.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/prune.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/ocd.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/ocd.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/steiner.cpp" "src/CMakeFiles/ocd.dir/core/steiner.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/steiner.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/ocd.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/core/validate.cpp.o.d"
  "/root/repo/src/dynamics/model.cpp" "src/CMakeFiles/ocd.dir/dynamics/model.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/dynamics/model.cpp.o.d"
  "/root/repo/src/dynamics/sessions.cpp" "src/CMakeFiles/ocd.dir/dynamics/sessions.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/dynamics/sessions.cpp.o.d"
  "/root/repo/src/exact/bnb.cpp" "src/CMakeFiles/ocd.dir/exact/bnb.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/exact/bnb.cpp.o.d"
  "/root/repo/src/exact/hybrid.cpp" "src/CMakeFiles/ocd.dir/exact/hybrid.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/exact/hybrid.cpp.o.d"
  "/root/repo/src/exact/ip_builder.cpp" "src/CMakeFiles/ocd.dir/exact/ip_builder.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/exact/ip_builder.cpp.o.d"
  "/root/repo/src/exact/ip_solver.cpp" "src/CMakeFiles/ocd.dir/exact/ip_solver.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/exact/ip_solver.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/ocd.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/ocd.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/heuristics/architectures.cpp" "src/CMakeFiles/ocd.dir/heuristics/architectures.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/architectures.cpp.o.d"
  "/root/repo/src/heuristics/bandwidth_saver.cpp" "src/CMakeFiles/ocd.dir/heuristics/bandwidth_saver.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/bandwidth_saver.cpp.o.d"
  "/root/repo/src/heuristics/factory.cpp" "src/CMakeFiles/ocd.dir/heuristics/factory.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/factory.cpp.o.d"
  "/root/repo/src/heuristics/global_greedy.cpp" "src/CMakeFiles/ocd.dir/heuristics/global_greedy.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/global_greedy.cpp.o.d"
  "/root/repo/src/heuristics/random_useful.cpp" "src/CMakeFiles/ocd.dir/heuristics/random_useful.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/random_useful.cpp.o.d"
  "/root/repo/src/heuristics/rarest_random.cpp" "src/CMakeFiles/ocd.dir/heuristics/rarest_random.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/rarest_random.cpp.o.d"
  "/root/repo/src/heuristics/round_robin.cpp" "src/CMakeFiles/ocd.dir/heuristics/round_robin.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/heuristics/round_robin.cpp.o.d"
  "/root/repo/src/lp/mip.cpp" "src/CMakeFiles/ocd.dir/lp/mip.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/lp/mip.cpp.o.d"
  "/root/repo/src/lp/model.cpp" "src/CMakeFiles/ocd.dir/lp/model.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/lp/model.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/ocd.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/reduction/dominating_set.cpp" "src/CMakeFiles/ocd.dir/reduction/dominating_set.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/reduction/dominating_set.cpp.o.d"
  "/root/repo/src/reduction/ds_reduction.cpp" "src/CMakeFiles/ocd.dir/reduction/ds_reduction.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/reduction/ds_reduction.cpp.o.d"
  "/root/repo/src/sim/gossip.cpp" "src/CMakeFiles/ocd.dir/sim/gossip.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/gossip.cpp.o.d"
  "/root/repo/src/sim/group_adapter.cpp" "src/CMakeFiles/ocd.dir/sim/group_adapter.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/group_adapter.cpp.o.d"
  "/root/repo/src/sim/knowledge.cpp" "src/CMakeFiles/ocd.dir/sim/knowledge.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/knowledge.cpp.o.d"
  "/root/repo/src/sim/overhead.cpp" "src/CMakeFiles/ocd.dir/sim/overhead.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/overhead.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/CMakeFiles/ocd.dir/sim/policy.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/policy.cpp.o.d"
  "/root/repo/src/sim/scripted.cpp" "src/CMakeFiles/ocd.dir/sim/scripted.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/scripted.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ocd.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ocd.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/views.cpp" "src/CMakeFiles/ocd.dir/sim/views.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/sim/views.cpp.o.d"
  "/root/repo/src/topology/physical.cpp" "src/CMakeFiles/ocd.dir/topology/physical.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/topology/physical.cpp.o.d"
  "/root/repo/src/topology/random_graph.cpp" "src/CMakeFiles/ocd.dir/topology/random_graph.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/topology/random_graph.cpp.o.d"
  "/root/repo/src/topology/transit_stub.cpp" "src/CMakeFiles/ocd.dir/topology/transit_stub.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/topology/transit_stub.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/ocd.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/util/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ocd.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ocd.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/util/table.cpp.o.d"
  "/root/repo/src/util/token_set.cpp" "src/CMakeFiles/ocd.dir/util/token_set.cpp.o" "gcc" "src/CMakeFiles/ocd.dir/util/token_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
