file(REMOVE_RECURSE
  "libocd.a"
)
