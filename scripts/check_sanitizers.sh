#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (the `asan-ubsan` CMake preset) and run the tier-1 test suite under it.
# Any sanitizer report fails the run.
#
#   scripts/check_sanitizers.sh             # configure + build + ctest
#   OCD_SAN_FILTER='Simulator*' scripts/check_sanitizers.sh  # subset
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

ctest_args=(--preset asan-ubsan -j "$(nproc)")
if [[ -n "${OCD_SAN_FILTER:-}" ]]; then
  ctest_args+=(-R "${OCD_SAN_FILTER}")
fi
ctest "${ctest_args[@]}"

echo "Sanitizer run clean."
