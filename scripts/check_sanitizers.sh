#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (the `asan-ubsan` CMake preset) and run the tier-1 test suite under it,
# then rebuild the test suite with ThreadSanitizer (the `tsan` preset)
# and run the threaded sweep-harness tests under that.  Any sanitizer
# report fails the run.
#
#   scripts/check_sanitizers.sh             # configure + build + ctest
#   OCD_SAN_FILTER='Simulator*' scripts/check_sanitizers.sh  # ASan subset
#   OCD_TSAN_FILTER='SweepGrid*' scripts/check_sanitizers.sh # TSan subset
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

ctest_args=(--preset asan-ubsan -j "$(nproc)")
if [[ -n "${OCD_SAN_FILTER:-}" ]]; then
  ctest_args+=(-R "${OCD_SAN_FILTER}")
fi
ctest "${ctest_args[@]}"

# SIMD kernel differential pass: the vectorized token kernels promise
# bit-identity with scalar AND sanitizer-cleanliness (unaligned loads
# only, scalar tails, never a byte past num_words).  The fuzz +
# dispatch + planner-replay suites run with OCD_SIMD forced to scalar
# and again to the widest level this host can execute, so ASan/UBSan
# see every dispatch table actually run — the default auto-resolution
# above only exercises one.  The shell probe mirrors the C++ cpuid
# probe (avx512 needs VPOPCNTDQ, not just the F foundation).
simd_levels=(scalar)
if grep -qw avx512_vpopcntdq /proc/cpuinfo 2>/dev/null \
    && grep -qw avx512f /proc/cpuinfo 2>/dev/null; then
  simd_levels+=(avx512)
elif grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
  simd_levels+=(avx2)
fi
for level in "${simd_levels[@]}"; do
  echo "== SIMD differential pass: OCD_SIMD=${level} =="
  OCD_SIMD="${level}" ctest --preset asan-ubsan -j "$(nproc)" \
    -R 'Simd|TokenMatrix|TokenSet'
done

# ThreadSanitizer pass: all intentionally concurrent code sits on the
# ocd::util parallel runtime — the Parallel suite drives the pool
# primitives directly, Determinism replays whole planner/fault runs
# under OCD_JOBS in {1,2,8} (sharded wave scan + sharded apply phase),
# and SweepGrid drives run_grid, including a full (policy x seed) grid
# of run_policy calls, so any shared mutable state in the planners
# shows up here.  FaultSweep runs the lossy fig_loss workload shape
# (fault models + reliable adapters) on the same pool.  The vertex-
# shard runtime rides the same pool: ShardDeterminism steps every
# shard of the in-process transport as pool chunks (the two-mailbox
# grids between phases are exactly the handoffs TSan must vet),
# ShardRecovery adds the crash-recovery driver on top (worker
# teardown/respawn and checkpoint/replay interleaved with the pool
# phases — the recovery bookkeeping claims to run only on the driver
# thread between barriers, and this pass is what holds it to that),
# ShardCoordinated replays the coordinated planners' wave round (the
# per-step top-k broadcast that precedes plan) against single-process
# runs with the same pool fan-out,
# and ShardPartition/BinStream cover the partitioner and the message
# codec (their data races would surface as corrupt frames, so they run
# here AND in the ASan pass above).  ShardForkTransport,
# ShardForkRecovery and ShardForkCoordinated are deliberately absent
# from the filter: fork()
# from a threaded test binary is outside TSan's supported envelope —
# the forked transport's correctness (including crash respawn and the
# barrier-deadline hang detection) is pinned by the differential
# suites in the default and ASan builds instead.  The flat-memory suites ride along: TokenMatrix
# / SnapshotRing exercise the view kernels and snapshot ring
# (view-lifetime bugs are ASan's bread and butter, caught in the pass
# above), and AllocCount re-checks the zero-allocation steady state
# with the sanitizer allocators interposed.  OCD_JOBS=8 is forced so
# every primitive actually fans out — with the hardware default a
# small CI box would run the whole pass serially and the races TSan
# exists to catch would never execute.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target ocd_tests ocd_alloc_tests

export TSAN_OPTIONS="halt_on_error=1"
OCD_JOBS=8 ctest --preset tsan -j "$(nproc)" \
  -R "${OCD_TSAN_FILTER:-Parallel|Determinism|SweepGrid|FaultSweep|TokenMatrix|SnapshotRing|AllocCount|MaxFlow|ShardDeterminism|ShardCoordinated|ShardPartition|ShardRecovery|BinStream}"

echo "Sanitizer run clean."
