#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and flag regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold PCT]

Benchmarks are matched by name.  For each pair the script prefers the
items_per_second counter (higher is better; our planner benchmarks
report planning steps/sec through it) and falls back to real_time
(lower is better).  A benchmark that got worse by more than the
threshold (default 20%) is a regression; the script lists every match
and exits 1 if any regressed.

Only aggregate-free runs are expected; if a file contains aggregate
rows (mean/median/stddev from --benchmark_repetitions), only the
"mean" aggregates are compared.

Snapshot hygiene: comparing against a debug-build capture is
meaningless (debug throughput is an order of magnitude off release),
so any input whose context reports library_build_type "debug" is
refused unless --allow-debug is given, which downgrades the refusal to
a loud warning.  --require PATTERN (repeatable) additionally fails the
run if no compared benchmark matches the pattern — guarding against a
renamed or silently dropped benchmark slipping past the gate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def check_build_type(path: Path, data: dict, allow_debug: bool) -> None:
    context = data.get("context", {})
    # "ocd_build_type" is injected by the benchmark binary and reflects
    # how this repository's code was compiled; the stock
    # "library_build_type" only describes the google-benchmark library
    # (distro packages ship it as a debug build), so it is the fallback
    # for old snapshots that predate the custom field.
    field = "ocd_build_type"
    build_type = context.get(field)
    if build_type is None:
        field = "library_build_type"
        build_type = context.get(field, "")
    if build_type.lower() != "debug":
        return
    message = (
        f"{path} was captured from a DEBUG build "
        f'(context.{field} == "debug"); debug throughput is '
        "not comparable to release numbers. Re-record it with the "
        "release-bench preset (scripts/reproduce_all.sh)."
    )
    if not allow_debug:
        sys.exit(f"error: {message}")
    print(f"WARNING: {message}", file=sys.stderr)
    print("WARNING: proceeding anyway because of --allow-debug.",
          file=sys.stderr)


def load_benchmarks(path: Path, allow_debug: bool) -> dict[str, dict]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark JSON {path}: {exc}")
    check_build_type(path, data, allow_debug)
    rows = data.get("benchmarks", [])
    has_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    out: dict[str, dict] = {}
    for row in rows:
        if has_aggregates:
            if row.get("aggregate_name") != "mean":
                continue
            name = row.get("run_name", row["name"])
        else:
            name = row["name"]
        out[name] = row
    return out


def metric(row: dict) -> tuple[str, float, bool]:
    """Returns (metric name, value, higher_is_better)."""
    if "items_per_second" in row:
        return ("items_per_second", float(row["items_per_second"]), True)
    return ("real_time", float(row["real_time"]), False)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="regression threshold in percent (default: 20)",
    )
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="downgrade the debug-build-snapshot refusal to a warning",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fail unless some compared benchmark matches this regex "
        "(repeatable)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline, args.allow_debug)
    curr = load_benchmarks(args.current, args.allow_debug)
    common = [name for name in base if name in curr]
    if not common:
        sys.exit("error: no benchmark names in common between the two files")
    missing = [p for p in args.require
               if not any(re.search(p, name) for name in common)]
    if missing:
        sys.exit("error: required benchmark(s) absent from the comparison: "
                 + ", ".join(missing))

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'metric':>16}  {'baseline':>12} "
          f"{'current':>12}  {'change':>8}")
    for name in common:
        base_metric, base_val, higher_better = metric(base[name])
        curr_metric, curr_val, _ = metric(curr[name])
        if base_metric != curr_metric or base_val == 0:
            print(f"{name:<{width}}  (incomparable: {base_metric} vs "
                  f"{curr_metric})")
            continue
        # Positive change == improvement, in either metric orientation.
        if higher_better:
            change = 100.0 * (curr_val / base_val - 1.0)
        else:
            change = 100.0 * (base_val / curr_val - 1.0)
        flag = ""
        if change < -args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, change))
        print(f"{name:<{width}}  {base_metric:>16}  {base_val:12.4g} "
              f"{curr_val:12.4g}  {change:+7.1f}%{flag}")

    skipped = sorted(set(base) ^ set(curr))
    if skipped:
        print(f"# unmatched benchmarks ignored: {', '.join(skipped)}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:")
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}% "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
