#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and flag regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold PCT]

Benchmarks are matched by name.  For each pair the script prefers the
items_per_second counter (higher is better; our planner benchmarks
report planning steps/sec through it) and falls back to real_time
(lower is better).  A benchmark that got worse by more than the
threshold (default 20%) is a regression; the script lists every match
and exits 1 if any regressed.

Only aggregate-free runs are expected; if a file contains aggregate
rows (mean/median/stddev from --benchmark_repetitions), only the
"mean" aggregates are compared.

Snapshot hygiene: comparing against a debug-build capture is
meaningless (debug throughput is an order of magnitude off release),
so any input whose context reports library_build_type "debug" is
refused unless --allow-debug is given, which downgrades the refusal to
a loud warning.  Likewise, a /threads:N benchmark captured on a host
with fewer than N cores never experienced real contention — "parity"
in such a snapshot is vacuous — so those comparisons are refused when
either file's recorded core count (context.hardware_concurrency,
falling back to the stock num_cpus) is below N, unless
--allow-undersized-host downgrades the refusal to warn-and-skip.
--require PATTERN (repeatable) additionally fails the run if no
matched benchmark matches the pattern — guarding against a renamed or
silently dropped benchmark slipping past the gate.
--require-any PATTERN is the host-aware variant: the pattern must
still match some common benchmark (same rename guard), but when every
match was skipped by the undersized-host rule the gate is waived with
a warning instead of failing — the right semantics for /shards:N and
/threads:N families that only a big-enough host can meaningfully
gate.  The /threads:N rule applies equally to /shards:N names: both
encode a worker budget the capturing host must actually have.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def check_build_type(path: Path, data: dict, allow_debug: bool) -> None:
    context = data.get("context", {})
    # "ocd_build_type" is injected by the benchmark binary and reflects
    # how this repository's code was compiled; the stock
    # "library_build_type" only describes the google-benchmark library
    # (distro packages ship it as a debug build), so it is the fallback
    # for old snapshots that predate the custom field.
    field = "ocd_build_type"
    build_type = context.get(field)
    if build_type is None:
        field = "library_build_type"
        build_type = context.get(field, "")
    if build_type.lower() != "debug":
        return
    message = (
        f"{path} was captured from a DEBUG build "
        f'(context.{field} == "debug"); debug throughput is '
        "not comparable to release numbers. Re-record it with the "
        "release-bench preset (scripts/reproduce_all.sh)."
    )
    if not allow_debug:
        sys.exit(f"error: {message}")
    print(f"WARNING: {message}", file=sys.stderr)
    print("WARNING: proceeding anyway because of --allow-debug.",
          file=sys.stderr)


def recorded_cores(data: dict) -> int | None:
    """Core count of the capturing host, or None for old snapshots.

    "hardware_concurrency" is injected by the benchmark binary; the
    stock "num_cpus" is the fallback for snapshots that predate it.
    """
    context = data.get("context", {})
    for field in ("hardware_concurrency", "num_cpus"):
        value = context.get(field)
        if value is None:
            continue
        try:
            cores = int(value)
        except (TypeError, ValueError):
            continue
        if cores > 0:
            return cores
    return None


def load_benchmarks(path: Path,
                    allow_debug: bool) -> tuple[dict[str, dict], int | None]:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark JSON {path}: {exc}")
    check_build_type(path, data, allow_debug)
    rows = data.get("benchmarks", [])
    has_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    out: dict[str, dict] = {}
    for row in rows:
        # Rows recorded via SkipWithError (e.g. a SIMD level the host
        # cannot run) carry no measurement; comparing them is noise.
        if row.get("error_occurred"):
            continue
        if has_aggregates:
            if row.get("aggregate_name") != "mean":
                continue
            name = row.get("run_name", row["name"])
        else:
            name = row["name"]
        out[name] = row
    return out, recorded_cores(data)


THREADS_RE = re.compile(r"/(?:threads|shards):(\d+)\b")


def undersized_for(name: str, cores: int | None) -> bool:
    """True when `name` is a /threads:N (or /shards:N) benchmark and
    the host that recorded it had fewer than N cores."""
    match = THREADS_RE.search(name)
    return (match is not None and cores is not None
            and cores < int(match.group(1)))


def metric(row: dict) -> tuple[str, float, bool]:
    """Returns (metric name, value, higher_is_better)."""
    if "items_per_second" in row:
        return ("items_per_second", float(row["items_per_second"]), True)
    return ("real_time", float(row["real_time"]), False)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="regression threshold in percent (default: 20)",
    )
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="downgrade the debug-build-snapshot refusal to a warning",
    )
    parser.add_argument(
        "--allow-undersized-host",
        action="store_true",
        help="downgrade the undersized-host /threads:N refusal to a "
        "warning and skip those comparisons",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fail unless some compared benchmark matches this regex "
        "(repeatable)",
    )
    parser.add_argument(
        "--require-any",
        action="append",
        default=[],
        metavar="PATTERN",
        help="like --require, but waived with a warning when every "
        "match was skipped by the undersized-host rule (repeatable)",
    )
    args = parser.parse_args()

    base, base_cores = load_benchmarks(args.baseline, args.allow_debug)
    curr, curr_cores = load_benchmarks(args.current, args.allow_debug)
    common = [name for name in base if name in curr]
    if not common:
        sys.exit("error: no benchmark names in common between the two files")
    missing = [p for p in args.require + args.require_any
               if not any(re.search(p, name) for name in common)]
    if missing:
        sys.exit("error: required benchmark(s) absent from the comparison: "
                 + ", ".join(missing))

    # A /threads:N family recorded on a host with fewer than N cores
    # measured oversubscription, not contention — parity there proves
    # nothing about a real N-core regression.  --require patterns were
    # checked above, against the pre-skip names: the benchmarks exist in
    # both files, only their regression comparison is vacuous.
    undersized = [
        name for name in common
        if undersized_for(name, base_cores) or undersized_for(
            name, curr_cores)
    ]
    if undersized:
        cores = min(c for c in (base_cores, curr_cores) if c is not None)
        message = (
            f"{len(undersized)} /threads:N benchmark(s) were captured on "
            f"a host recording only {cores} core(s) "
            f"(context.hardware_concurrency/num_cpus): "
            + ", ".join(undersized))
        if not args.allow_undersized_host:
            sys.exit(
                f"error: {message}\nRe-record on a host with enough "
                "cores, or pass --allow-undersized-host to skip these "
                "comparisons.")
        print(f"WARNING: {message}", file=sys.stderr)
        print(
            "WARNING: skipping their comparison because of "
            "--allow-undersized-host.",
            file=sys.stderr)
        common = [name for name in common if name not in set(undersized)]
        # --require-any gates whose every match was undersized-skipped
        # are waived on this host (they were present pre-skip — the
        # rename guard above already vouched for that).
        for pattern in args.require_any:
            if not any(re.search(pattern, name) for name in common):
                print(
                    f"WARNING: --require-any gate '{pattern}' waived: "
                    "every matching benchmark was captured on an "
                    "undersized host.",
                    file=sys.stderr)
        if not common:
            print("\nOK: nothing left to compare after undersized-host "
                  "skips (0 compared)")
            return 0

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'metric':>16}  {'baseline':>12} "
          f"{'current':>12}  {'change':>8}")
    for name in common:
        base_metric, base_val, higher_better = metric(base[name])
        curr_metric, curr_val, _ = metric(curr[name])
        if base_metric != curr_metric or base_val == 0:
            print(f"{name:<{width}}  (incomparable: {base_metric} vs "
                  f"{curr_metric})")
            continue
        # Positive change == improvement, in either metric orientation.
        if higher_better:
            change = 100.0 * (curr_val / base_val - 1.0)
        else:
            change = 100.0 * (base_val / curr_val - 1.0)
        flag = ""
        if change < -args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, change))
        print(f"{name:<{width}}  {base_metric:>16}  {base_val:12.4g} "
              f"{curr_val:12.4g}  {change:+7.1f}%{flag}")

    skipped = sorted(set(base) ^ set(curr))
    if skipped:
        print(f"# unmatched benchmarks ignored: {', '.join(skipped)}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:")
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}% "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
