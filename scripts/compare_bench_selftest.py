#!/usr/bin/env python3
"""Self-check for the compare_bench.py snapshot-hygiene gates.

Runs compare_bench.py against synthetic Google-Benchmark JSON pairs
and asserts the behaviors the CI gates rely on:

  1. a /threads:8 comparison against a snapshot whose recorded core
     count is 1 is refused (exit != 0, error names the benchmark);
  2. --allow-undersized-host downgrades that refusal to warn-and-skip,
     the single-threaded rows still compare, and --require patterns
     naming the skipped family still match (the benchmarks exist at
     parity; only the vacuous comparison is dropped);
  3. rows recorded via SkipWithError (error_occurred) are excluded, so
     a --require pattern that only an errored row matches fails;
  4. the undersized-host rule covers /shards:N names exactly like
     /threads:N ones;
  5. --require-any fails on a genuinely absent family, is waived with
     a warning when every match was undersized-skipped, and is
     enforced (regression fails) when the matches survive.

Exits 0 when every check passes.  No inputs; safe to run anywhere
python3 is available.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "compare_bench.py"


def snapshot(cores: str, ips_scale: float) -> dict:
    def row(name: str, ips: float, error: bool = False) -> dict:
        out = {"name": name, "run_type": "iteration", "real_time": 1.0,
               "items_per_second": ips * ips_scale}
        if error:
            out["error_occurred"] = True
            out["error_message"] = "simd level unsupported on this host"
            del out["items_per_second"]
        return out

    return {
        "context": {"ocd_build_type": "release",
                    "hardware_concurrency": cores},
        "benchmarks": [
            row("BM_PlannerStepsPerSec/global/threads:8", 8000.0),
            row("BM_ShardStep/round_robin/1000/512/shards:4", 4000.0),
            row("BM_TokenKernel/count_intersection_scalar/512", 1e9),
            row("BM_TokenKernel/count_intersection_avx512/512", 0.0,
                error=True),
        ],
    }


def run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCRIPT), *argv],
                          capture_output=True, text=True)


def check(ok: bool, label: str, proc: subprocess.CompletedProcess) -> None:
    if ok:
        print(f"ok: {label}")
        return
    sys.exit(f"FAIL: {label}\n--- stdout ---\n{proc.stdout}"
             f"\n--- stderr ---\n{proc.stderr}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "base.json"
        curr = Path(tmp) / "curr.json"
        # The baseline claims 8-thread parity but was recorded on one
        # core; the current run is from a real 8-core host.
        base.write_text(json.dumps(snapshot(cores="1", ips_scale=1.0)))
        curr.write_text(json.dumps(snapshot(cores="8", ips_scale=1.0)))

        proc = run(str(base), str(curr))
        check(
            proc.returncode != 0
            and "BM_PlannerStepsPerSec/global/threads:8" in proc.stderr
            and "1 core" in proc.stderr,
            "undersized-host /threads:8 gate is refused", proc)
        check(
            "BM_ShardStep/round_robin/1000/512/shards:4" in proc.stderr,
            "undersized-host rule covers /shards:N names", proc)

        proc = run(str(base), str(curr), "--allow-undersized-host",
                   "--require", r"BM_PlannerStepsPerSec/.*/threads:8",
                   "--require", r"BM_TokenKernel/count_intersection_scalar")
        check(
            proc.returncode == 0
            and "--allow-undersized-host" in proc.stderr
            and "count_intersection_scalar" in proc.stdout
            and "threads:8" not in proc.stdout.splitlines()[-1],
            "--allow-undersized-host warns, skips, and keeps --require",
            proc)

        proc = run(str(base), str(curr), "--allow-undersized-host",
                   "--require", r"count_intersection_avx512")
        check(
            proc.returncode != 0
            and "count_intersection_avx512" in (proc.stderr + proc.stdout),
            "errored (SkipWithError) rows cannot satisfy --require", proc)

        # Sanity: an actual regression in the surviving rows still fails.
        slow = Path(tmp) / "slow.json"
        slow.write_text(json.dumps(snapshot(cores="8", ips_scale=0.5)))
        proc = run(str(base), str(slow), "--allow-undersized-host")
        check(proc.returncode != 0 and "REGRESSION" in proc.stdout,
              "regressions still fail after undersized-host skips", proc)

        # --require-any: absent families still fail the rename guard.
        proc = run(str(base), str(curr), "--allow-undersized-host",
                   "--require-any", r"BM_DoesNotExist")
        check(proc.returncode != 0 and "BM_DoesNotExist" in proc.stderr,
              "--require-any fails on an absent family", proc)

        # --require-any: waived (warn + pass) when every match was
        # captured on an undersized host.
        proc = run(str(base), str(curr), "--allow-undersized-host",
                   "--require-any", r"BM_ShardStep/.*/shards:4")
        check(
            proc.returncode == 0 and "waived" in proc.stderr
            and "BM_ShardStep" in proc.stderr,
            "--require-any is waived when all matches are undersized",
            proc)

        # --require-any: enforced when the matches survive — a shard
        # regression between two big-host snapshots still fails.
        big_base = Path(tmp) / "big_base.json"
        big_slow = Path(tmp) / "big_slow.json"
        big_base.write_text(json.dumps(snapshot(cores="8", ips_scale=1.0)))
        big_slow.write_text(json.dumps(snapshot(cores="8", ips_scale=0.5)))
        proc = run(str(big_base), str(big_slow),
                   "--require-any", r"BM_ShardStep/.*/shards:4")
        check(
            proc.returncode != 0 and "REGRESSION" in proc.stdout
            and "waived" not in proc.stderr,
            "--require-any is enforced on a big-enough host", proc)

    print("compare_bench_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
