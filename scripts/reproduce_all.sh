#!/usr/bin/env bash
# Reproduce everything: build, run the test suite, run every figure and
# ablation bench, and archive outputs under ./results/.
#
#   scripts/reproduce_all.sh            # quick mode (seconds per bench)
#   OCD_FULL=1 scripts/reproduce_all.sh # the paper's full parameter sweep
#   OCD_SANITIZE=1 scripts/reproduce_all.sh # also run tests under ASan+UBSan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

if [[ -n "${OCD_SANITIZE:-}" ]]; then
  scripts/check_sanitizers.sh
fi

mkdir -p results
ctest --test-dir build --output-on-failure 2>&1 | tee results/tests.txt

for bench in build/bench/*; do
  name=$(basename "$bench")
  echo "== ${name} =="
  "$bench" | tee "results/${name}.txt"
done

echo
echo "All outputs archived in results/."
