#!/usr/bin/env bash
# Reproduce everything: build, run the test suite, run every figure and
# ablation bench, and archive outputs under ./results/.
#
#   scripts/reproduce_all.sh            # quick mode (seconds per bench)
#   OCD_FULL=1 scripts/reproduce_all.sh # the paper's full parameter sweep
#   OCD_SANITIZE=1 scripts/reproduce_all.sh # also run tests under ASan+UBSan
#   OCD_JOBS=8 scripts/reproduce_all.sh # worker threads per bench sweep
#                                       # (default: hardware concurrency)
#   OCD_BENCH_BASELINE=old/BENCH_planner.json scripts/reproduce_all.sh
#                                       # warn on >=20% planner-kernel
#                                       # regressions vs a prior snapshot
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast on a typo'd OCD_JOBS instead of hours into the sweep — the
# same validation the ocd::util parallel runtime applies in-process.
if [[ -n "${OCD_JOBS:-}" && ! "${OCD_JOBS}" =~ ^[1-9][0-9]*$ ]]; then
  echo "error: OCD_JOBS must be a positive integer, got '${OCD_JOBS}'" >&2
  exit 1
fi

cmake --preset default
cmake --build --preset default -j "$(nproc)"

if [[ -n "${OCD_SANITIZE:-}" ]]; then
  scripts/check_sanitizers.sh
fi

mkdir -p results
ctest --preset default 2>&1 | tee results/tests.txt

# Vertex-shard replay: re-run the shard-count-invariance and fork-
# transport differential suites on their own and archive the log, so
# the bit-identity gate (schedules and stats identical across shards
# {1,2,4}, both transports, with and without fault models) is visible
# at a glance rather than buried in the full suite output.
ctest --preset default \
  -R 'ShardDeterminism|ShardForkTransport|ShardCoordinated|ShardForkCoordinated' \
  --output-on-failure 2>&1 | tee results/shard_replay.txt

# Benchmarks are built separately at full optimisation (-O3 -DNDEBUG,
# the `release-bench` preset); tests stay on the default RelWithDebInfo
# build with assertions enabled.
cmake --preset release-bench
cmake --build --preset release-bench -j "$(nproc)"

for bench in build-bench/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name=$(basename "$bench")
  [[ "$name" == "micro_benchmarks" ]] && continue
  echo "== ${name} =="
  "$bench" | tee "results/${name}.txt"
done

# Planner-kernel, token-kernel, and shard-step micro-benchmarks:
# human-readable console output plus a machine-readable snapshot for
# scripts/compare_bench.py.
echo "== micro_benchmarks (planner + token kernels + shard steps) =="
build-bench/bench/micro_benchmarks \
  --benchmark_filter='PlannerStepsPerSec|TokenKernel|ShardStep|Partition' \
  --benchmark_out=results/BENCH_planner.json \
  --benchmark_out_format=json | tee results/micro_benchmarks.txt

# The regression gate refuses debug-build snapshots and insists the
# full planner grid is present — every family at the large 1000v/512t
# point, the serial (/threads:1) baseline AND the sharded /threads:2
# and /threads:8 variants (ISSUE 5) — so a silently dropped benchmark
# cannot pass unnoticed.  The /threads:N requires are matched before
# the undersized-host skip, so --allow-undersized-host keeps this gate
# usable on small CI boxes: presence is still enforced everywhere,
# only the vacuous contention comparison is skipped there.  The
# scalar token-kernel families (ISSUE 6) are likewise required
# unconditionally; the avx2/avx512 families only where this host can
# run them (elsewhere they are SkipWithError rows, which
# compare_bench.py excludes).
simd_requires=(--require 'TokenKernel/count_intersection_scalar/4096'
               --require 'TokenKernel/fresh_union_apply_scalar/4096')
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
  simd_requires+=(--require 'TokenKernel/count_intersection_avx2/4096'
                  --require 'TokenKernel/fresh_union_apply_avx2/4096')
fi
if grep -qw avx512_vpopcntdq /proc/cpuinfo 2>/dev/null \
    && grep -qw avx512f /proc/cpuinfo 2>/dev/null; then
  simd_requires+=(--require 'TokenKernel/count_intersection_avx512/4096')
fi
if [[ -n "${OCD_BENCH_BASELINE:-}" ]]; then
  python3 scripts/compare_bench.py "${OCD_BENCH_BASELINE}" \
    results/BENCH_planner.json \
    --allow-undersized-host \
    --require 'PlannerStepsPerSec/global/1000/512/threads:1' \
    --require 'PlannerStepsPerSec/global/1000/512/threads:2' \
    --require 'PlannerStepsPerSec/global/1000/512/threads:8' \
    --require 'PlannerStepsPerSec/local/1000/512/threads:1' \
    --require 'PlannerStepsPerSec/local/1000/512/threads:8' \
    --require 'PlannerStepsPerSec/random/1000/512/threads:1' \
    --require 'PlannerStepsPerSec/round_robin/1000/512/threads:1' \
    --require 'PlannerStepsPerSec/bandwidth/1000/512/threads:1' \
    --require-any 'ShardStep/round_robin/1000/512/shards:1' \
    --require-any 'ShardStep/round_robin/1000/512/shards:4' \
    --require-any 'ShardStep/local/1000/512/shards:4' \
    --require-any 'ShardStep/global/1000/512/shards:1' \
    --require-any 'ShardStep/global/1000/512/shards:4' \
    --require-any 'Partition/greedy/k:4' \
    --require-any 'Partition/flow/k:4' \
    --require-any 'Partition/flow/k:8' \
    "${simd_requires[@]}" ||
    echo "WARNING: planner kernel throughput regressed vs baseline."
fi

echo
echo "All outputs archived in results/."
